#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/binio.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "obs/observer.hpp"
#include "sca/model.hpp"
#include "store/trace_store.hpp"

namespace slm::core {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t shard_quota(std::size_t total, std::size_t shard,
                        std::size_t shards) {
  SLM_REQUIRE(shards > 0 && shard < shards, "shard_quota: bad shard index");
  // Round-robin: 1-based trace t belongs to shard (t - 1) % shards, so
  // shard i has seen floor((total - i + shards - 1) / shards) traces.
  if (total <= shard) return 0;
  return (total - shard + shards - 1) / shards;
}

struct ThreadPool::Impl {
  std::vector<std::thread> workers;
  std::mutex m;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::size_t workers_done = 0;
  std::uint64_t generation = 0;
  bool stop = false;
  std::exception_ptr error;
  // submit_indexed/wait state: the pool-owned copy of the callable and
  // whether an async batch is outstanding (wait() without a submit must
  // return immediately, not deadlock on workers_done).
  std::function<void(std::size_t)> owned_fn;
  bool in_flight = false;

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lk(m);
      cv_work.wait(lk, [&] { return stop || generation != seen; });
      // Drain a pending batch before honouring stop: the destructor
      // must join (not abandon) a batch submitted via submit_indexed.
      if (generation == seen) return;
      seen = generation;
      lk.unlock();
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          (*fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> g(m);
          if (!error) error = std::current_exception();
        }
      }
      lk.lock();
      if (++workers_done == workers.size()) cv_done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(unsigned threads) : impl_(new Impl) {
  SLM_REQUIRE(threads > 0, "ThreadPool: zero threads");
  impl_->workers.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> g(impl_->m);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

unsigned ThreadPool::size() const {
  return static_cast<unsigned>(impl_->workers.size());
}

void ThreadPool::run_indexed(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::unique_lock<std::mutex> lk(impl_->m);
  impl_->fn = &fn;
  impl_->n = n;
  impl_->next.store(0, std::memory_order_relaxed);
  impl_->workers_done = 0;
  impl_->error = nullptr;
  ++impl_->generation;
  impl_->cv_work.notify_all();
  impl_->cv_done.wait(
      lk, [&] { return impl_->workers_done == impl_->workers.size(); });
  impl_->fn = nullptr;
  if (impl_->error) std::rethrow_exception(impl_->error);
}

void ThreadPool::submit_indexed(std::size_t n,
                                std::function<void(std::size_t)> fn) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lk(impl_->m);
  SLM_REQUIRE(!impl_->in_flight,
              "ThreadPool: submit_indexed while a batch is in flight");
  impl_->owned_fn = std::move(fn);
  impl_->fn = &impl_->owned_fn;
  impl_->n = n;
  impl_->next.store(0, std::memory_order_relaxed);
  impl_->workers_done = 0;
  impl_->error = nullptr;
  impl_->in_flight = true;
  ++impl_->generation;
  impl_->cv_work.notify_all();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lk(impl_->m);
  if (!impl_->in_flight) return;
  impl_->cv_done.wait(
      lk, [&] { return impl_->workers_done == impl_->workers.size(); });
  impl_->in_flight = false;
  impl_->fn = nullptr;
  if (impl_->error) {
    const std::exception_ptr e = impl_->error;
    impl_->error = nullptr;
    std::rethrow_exception(e);
  }
}

ParallelCampaign::ParallelCampaign(AttackSetup& setup,
                                   const CampaignConfig& cfg,
                                   unsigned threads)
    : setup_(setup), cfg_(cfg), threads_(resolve_threads(threads)) {
  // A borrowed pool fixes the worker count: the shard split must match
  // the threads actually running it, or run_indexed would starve shards.
  if (cfg_.pool != nullptr) threads_ = cfg_.pool->size();
  // Never spin up more shards than traces: each shard must own at least
  // one trace or its CpaEngine would merge as an empty no-op anyway.
  threads_ = static_cast<unsigned>(std::min<std::size_t>(
      threads_, std::max<std::size_t>(1, cfg_.traces)));
}

CampaignResult ParallelCampaign::run() {
  const auto t0 = std::chrono::steady_clock::now();
  CampaignResult result;
  if (threads_ <= 1) {
    // Exact legacy behaviour: same code path, same RNG consumption order
    // as every pre-sharding release.
    CpaCampaign campaign(setup_, cfg_);
    result = campaign.run();
  } else {
    result = run_sharded();
  }
  result.threads_used = threads_;
  result.capture_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

CampaignResult ParallelCampaign::run_sharded() {
  CpaCampaign campaign(setup_, cfg_);
  obs::CampaignObserver* const ob = cfg_.observer;
  CampaignResult result;
  result.mode = cfg_.mode;
  result.sample_times_ns = campaign.sample_times_;

  sca::LastRoundBitModel model(cfg_.target_key_byte, cfg_.target_bit);
  result.correct_guess =
      model.correct_guess(setup_.victim().cipher().last_round_key());

  // Trace store: same fingerprint rule as the serial engine — created
  // before bit resolution so the hash covers the requested endpoint bit.
  // Shards write disjoint rows of the store's columns, so no locking.
  std::unique_ptr<store::TraceStoreWriter> store_writer;
  if (!cfg_.store_out.empty()) {
    SLM_REQUIRE(!cfg_.resume,
                "store_out: cannot combine with resume — traces captured "
                "before the snapshot would be missing from the store");
    store_writer = std::make_unique<store::TraceStoreWriter>(
        cfg_.store_out,
        campaign.store_identity(store::StoreKind::kByteCampaign,
                                cfg_.traces));
    store_writer->set_capture_threads(threads_);
  }

  // Selection pre-pass runs serially, exactly as in the serial campaign;
  // it resolves kAutoBit into campaign.cfg_ for read_sensor below.
  {
    const auto sel_start = std::chrono::steady_clock::now();
    std::optional<obs::CampaignObserver::Span> span;
    if (ob != nullptr) span.emplace(ob->span("selection"));
    campaign.resolve_sensor_bits(&result);
    result.selection_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sel_start)
            .count();
  }
  result.single_bit = campaign.cfg_.single_bit;
  if (store_writer) {
    store_writer->set_resolved_single_bit(campaign.cfg_.single_bit);
  }

  auto schedule = cfg_.checkpoints.empty() ? default_checkpoints(cfg_.traces)
                                           : cfg_.checkpoints;
  std::sort(schedule.begin(), schedule.end());
  std::vector<std::size_t> checkpoints;
  for (std::size_t c : schedule) {
    if (c > 0 && c <= cfg_.traces) checkpoints.push_back(c);
  }
  if (checkpoints.empty() || checkpoints.back() != cfg_.traces) {
    checkpoints.push_back(cfg_.traces);
  }

  const std::size_t samples = campaign.sample_times_.size();
  const unsigned T = threads_;

  // RNG determinism contract (DESIGN.md §7/§12). Contract v2 assigns
  // every shard a contiguous chunk of the global trace sequence per
  // checkpoint segment and derives each trace's draws statelessly from
  // (seed, trace index) — results are bit-identical to the serial v2
  // engine for ANY thread count. Contract v1 keeps the historical
  // round-robin shard streams (results depend on the thread count).
  const RngContract contract = resolve_contract(cfg_.rng_contract);
  const bool v2 = contract == RngContract::kV2;
  result.rng_contract = contract;

  // Block-batched pipeline, one block loop per shard (DESIGN.md §11).
  // Shards clamp their blocks at per-checkpoint quotas, so shard trace
  // ownership and RNG streams are independent of the block size.
  const std::size_t block = resolve_block(cfg_.block);
  const bool simd = resolve_simd(cfg_.simd);
  result.block_size = block;
  const bool blocked = block > 1;

  // Compiled fast path: a read-only sensor plan shared by all shards (the
  // batch kernels use thread_local scratch, so sharing is safe) and a
  // per-shard class-sum accumulator folded into full CPA sums only at
  // checkpoints. Bit-identical to the reference path — see XorClassCpa.
  const bool fast = cfg_.compiled_kernels;
  const CpaCampaign::SensorPlan plan =
      fast ? campaign.make_sensor_plan(result.bits_of_interest)
           : CpaCampaign::SensorPlan{};
  const bool defer_hw = blocked && fast && plan.batched &&
                        cfg_.mode == SensorMode::kBenignHw;
  const std::size_t dps = plan.hw.draws_per_sample;
  // Deferred-HW shards also defer the PDN voltage matvec (see the serial
  // engine): currents are staged cycle-major per block and evaluated
  // through CycleResponseMatrix::voltages_block in the compute pass.
  const std::size_t ncyc = campaign.response_.cycle_count();
  const double coupling = setup_.effective_coupling();
  const double env_noise_v = setup_.calibration().env_noise_v;

  // The mutable half of the capture pipeline, one copy per shard.
  struct Shard {
    crypto::AesDatapathModel victim;
    std::optional<defense::ActiveFence> fence;
    Xoshiro256 rng;
    sca::CpaEngine engine;
    sca::XorClassCpa cls;
    std::size_t position = 0;
    std::vector<double> v;
    std::vector<double> y;
    std::vector<std::uint8_t> h;
    // Block staging buffers (blocked path only; sized lazily per shard).
    std::vector<double> vblk;
    std::vector<double> zblk;
    std::vector<double> icblk;
    std::vector<double> zvblk;
    std::vector<double> yblk;
    std::vector<std::uint8_t> clsv;
    std::vector<std::uint8_t> clsb;
    std::vector<std::uint8_t> hblk;
    // Observer-gated phase timers, accumulated thread-locally and pushed
    // into the registry only at checkpoint boundaries (workers never
    // touch the registry mutex mid-segment). `blocks` follows the same
    // batching rule for the slm.kernel.blocks_total counter.
    double kernel_s = 0.0;
    double cpa_s = 0.0;
    std::size_t blocks = 0;
  };
  std::vector<Shard> shards;
  shards.reserve(T);
  const bool fenced = cfg_.fence.random_current_a > 0.0 ||
                      cfg_.fence.base_current_a > 0.0;
  for (unsigned i = 0; i < T; ++i) {
    Shard sh{setup_.victim(),
             std::nullopt,
             Xoshiro256::stream(cfg_.seed, i),
             sca::CpaEngine(256, samples),
             sca::XorClassCpa(samples),
             0,
             {},
             {},
             {}};
    if (fenced) {
      defense::ActiveFenceConfig fc = cfg_.fence;
      // v1 gives every shard its own decorrelated sequential fence
      // stream. v2 derives fence draws per trace from the UNPERTURBED
      // fence seed (ActiveFence::trace_rng), so the per-shard seed must
      // stay the campaign's — otherwise results would depend on which
      // shard captured a trace.
      if (!v2) fc.seed ^= 0x9e3779b97f4a7c15ull * (i + 1);
      sh.fence.emplace(fc);
    }
    shards.push_back(std::move(sh));
  }

  // Crash-safe resume: restore every shard's accumulator, RNG stream,
  // victim register history, and fence stream; then drop the checkpoints
  // the snapshot already recorded. Shard count must match — shard i's
  // traces depend only on (seed, i), so resuming under a different
  // --threads would be a different campaign.
  std::size_t traces_done = 0;
  const bool snapshotting = !cfg_.checkpoint_dir.empty();
  if (cfg_.resume && snapshotting) {
    if (auto ck = load_checkpoint(cfg_.checkpoint_dir)) {
      require_checkpoint_matches(*ck, campaign.cfg_, T, samples,
                                 static_cast<std::uint32_t>(contract));
      for (unsigned i = 0; i < T; ++i) {
        const CheckpointShard& cs = ck->shard_state[i];
        Shard& sh = shards[i];
        SLM_REQUIRE(cs.has_fence == sh.fence.has_value(),
                    "resume: fence configuration differs from snapshot");
        sh.position = static_cast<std::size_t>(cs.position);
        if (!v2) {
          // v2 re-derives streams and register chains from (seed, trace
          // index); only positions and accumulator sums carry over.
          sh.rng.set_state(cs.rng);
          sh.victim.restore_registers(cs.victim);
          if (sh.fence) sh.fence->set_rng_state(cs.fence_rng);
        }
        ByteReader acc(cs.accumulator.data(), cs.accumulator.size());
        if (fast) {
          sh.cls.load(acc);
        } else {
          sh.engine.load(acc);
        }
        SLM_REQUIRE(acc.done(), "resume: trailing accumulator bytes");
      }
      result.progress = ck->progress;
      traces_done = static_cast<std::size_t>(ck->traces_done);
      result.resumed_from = traces_done;
      checkpoints.erase(
          std::remove_if(checkpoints.begin(), checkpoints.end(),
                         [&](std::size_t c) { return c <= traces_done; }),
          checkpoints.end());
      log_info() << "campaign: resumed from "
                 << checkpoint_file(cfg_.checkpoint_dir) << " at trace "
                 << traces_done << "/" << cfg_.traces << " across " << T
                 << " shards";
      if (ob != nullptr) {
        ob->metrics().add("slm.checkpoint.resumes_total");
        ob->event("resume",
                  obs::JsonWriter()
                      .field("traces_done",
                             static_cast<std::uint64_t>(traces_done))
                      .field("shards", static_cast<std::uint64_t>(T))
                      .field("path", checkpoint_file(cfg_.checkpoint_dir)));
      }
    }
  }

  if (ob != nullptr) {
    ob->metrics().set("slm.campaign.traces_target",
                      static_cast<double>(cfg_.traces));
    ob->metrics().set("slm.kernel.block_size", static_cast<double>(block));
    ob->event("run_start",
              obs::JsonWriter()
                  .field("mode", sensor_mode_name(cfg_.mode))
                  .field("traces", static_cast<std::uint64_t>(cfg_.traces))
                  .field("seed", static_cast<std::uint64_t>(cfg_.seed))
                  .field("threads", static_cast<std::uint64_t>(T))
                  .field("compiled", fast)
                  .field("block", static_cast<std::uint64_t>(block))
                  .field("rng_contract", rng_contract_name(contract))
                  .field("resumed_from",
                         static_cast<std::uint64_t>(result.resumed_from)));
  }

  const bool timed = ob != nullptr;
  double ckpt_io_s = 0.0;
  std::size_t seg_traces = traces_done;
  double seg_time = timed ? obs::monotonic_seconds() : 0.0;

  // Shard over the caller's pool when one is borrowed (the `slm serve`
  // daemon shares ONE pool across every tenant's campaigns); otherwise
  // own a private pool for the duration of the run.
  std::optional<ThreadPool> owned_pool;
  ThreadPool& pool = cfg_.pool != nullptr ? *cfg_.pool : owned_pool.emplace(T);
  sca::CpaEngine merged(256, samples);
  // Contract v2 chunking state: global zero-based traces [0, covered)
  // are done; each segment [covered, cp) is split into contiguous
  // per-shard chunks.
  std::size_t covered = traces_done;
  for (std::size_t cp : checkpoints) {
    {
      std::optional<obs::CampaignObserver::Span> capture_span;
      if (ob != nullptr) capture_span.emplace(ob->span("capture"));
      pool.run_indexed(T, [&](std::size_t i) {
        Shard& sh = shards[i];
        if (v2) {
          // Shard i owns global traces [g0, g1) of this segment: lane-
          // parallel generation with counter-keyed per-trace streams,
          // no cross-shard RNG ordering at all.
          const std::size_t n = cp - covered;
          const std::size_t g0 = covered + i * n / T;
          const std::size_t g1 = covered + (i + 1) * n / T;
          if (g0 >= g1) return;
          if (blocked) {
            sh.yblk.resize(block * samples);
            sh.clsv.resize(block);
            sh.clsb.resize(block);
            if (defer_hw) {
              sh.vblk.resize(block * samples);
              sh.zblk.resize(block * samples * dps);
              sh.icblk.resize(ncyc * block);
              sh.zvblk.resize(block * samples);
            }
            if (!fast) sh.hblk.resize(block * 256);
          }
          // Incoming victim registers: derivable from the previous trace
          // alone (the state register is fully overwritten every
          // encryption), so a chunk costs one extra stateless AES.
          crypto::AesDatapathModel::RegisterSnapshot regs{};
          if (g0 > 0) {
            Xoshiro256 prev = Xoshiro256::trace_stream(
                cfg_.seed, kTraceDomainCapture, g0 - 1);
            crypto::Block prev_pt;
            for (auto& b : prev_pt) {
              b = static_cast<std::uint8_t>(prev.next());
            }
            regs = sh.victim.registers_after(prev_pt, g0 - 1);
          }
          std::size_t g = g0;
          while (g < g1) {
            const std::size_t bn = blocked ? std::min(block, g1 - g) : 1;
            const double t0 = timed ? obs::monotonic_seconds() : 0.0;
            double t1 = 0.0;
            for (std::size_t b = 0; b < bn; ++b) {
              const std::size_t gb = g + b;
              Xoshiro256 rng_t = Xoshiro256::trace_stream(
                  cfg_.seed, kTraceDomainCapture, gb);
              crypto::Block pt;
              for (auto& pb : pt) {
                pb = static_cast<std::uint8_t>(rng_t.next());
              }
              const auto enc = sh.victim.encrypt_stateless(pt, gb, regs);
              if (defer_hw) {
                // Same staging expressions as the serial v2 producer.
                if (sh.fence) {
                  Xoshiro256 frng = sh.fence->trace_rng(gb);
                  for (std::size_t c = 0; c < ncyc; ++c) {
                    double cur = enc.cycle_current[c];
                    cur += sh.fence->cycle_current(frng);
                    cur *= coupling;
                    sh.icblk[c * block + b] = cur;
                  }
                } else {
                  for (std::size_t c = 0; c < ncyc; ++c) {
                    double cur = enc.cycle_current[c];
                    cur *= coupling;
                    sh.icblk[c * block + b] = cur;
                  }
                }
                FastNormal::instance().fill(
                    rng_t, sh.zvblk.data() + b * samples, samples);
                FastNormal::instance().fill(
                    rng_t, sh.zblk.data() + b * samples * dps,
                    samples * dps);
              } else {
                std::optional<Xoshiro256> frng;
                Xoshiro256* fr = nullptr;
                if (sh.fence) {
                  frng.emplace(sh.fence->trace_rng(gb));
                  fr = &*frng;
                }
                campaign.make_voltages(enc, rng_t, sh.v,
                                       sh.fence ? &*sh.fence : nullptr, fr);
                if (fast) {
                  campaign.read_sensor_fast(plan, sh.v,
                                            result.bits_of_interest, rng_t,
                                            sh.y);
                } else {
                  campaign.read_sensor(sh.v, result.bits_of_interest, rng_t,
                                       sh.y);
                }
                if (!blocked) {
                  t1 = timed ? obs::monotonic_seconds() : 0.0;
                  if (fast) {
                    sh.cls.add_trace(model.class_value(enc.ciphertext),
                                     model.class_bit(enc.ciphertext), sh.y);
                  } else {
                    model.hypotheses(enc.ciphertext, sh.h);
                    sh.engine.add_trace(sh.h, sh.y);
                  }
                } else {
                  std::copy(sh.y.begin(), sh.y.end(),
                            sh.yblk.begin() + b * samples);
                  if (!fast) {
                    model.hypotheses(enc.ciphertext, sh.h);
                    std::copy(sh.h.begin(), sh.h.end(),
                              sh.hblk.begin() + b * 256);
                  }
                }
              }
              if (blocked && fast) {
                sh.clsv[b] = model.class_value(enc.ciphertext);
                sh.clsb[b] = model.class_bit(enc.ciphertext);
              }
              // v2 shards own contiguous global ranges, so both columns
              // land at gb with no cross-shard interleaving.
              if (store_writer) {
                store_writer->record_meta(gb, pt, enc.ciphertext);
                if (!blocked) store_writer->record_readings(gb, sh.y.data());
              }
            }
            if (blocked) {
              if (defer_hw) {
                campaign.response_.voltages_block(sh.icblk.data(), bn, block,
                                                  sh.vblk.data(), simd);
                for (std::size_t k = 0; k < bn * samples; ++k) {
                  sh.vblk[k] += 0.0 + env_noise_v * sh.zvblk[k];
                }
                setup_.sensor().toggle_hw_block(plan.hw, sh.vblk.data(),
                                                bn * samples,
                                                sh.zblk.data(),
                                                sh.yblk.data(), simd);
              }
              t1 = timed ? obs::monotonic_seconds() : 0.0;
              if (fast) {
                sh.cls.add_block(sh.clsv.data(), sh.clsb.data(),
                                 sh.yblk.data(), bn);
              } else {
                sh.engine.add_traces(sh.hblk.data(), sh.yblk.data(), bn);
              }
              ++sh.blocks;
              if (store_writer) {
                store_writer->record_readings_block(g, sh.yblk.data(), bn);
              }
            }
            sh.position += bn;
            g += bn;
            if (timed) {
              const double t2 = obs::monotonic_seconds();
              sh.kernel_s += t1 - t0;
              sh.cpa_s += t2 - t1;
            }
          }
          return;
        }
        const std::size_t target = shard_quota(cp, i, T);
        if (blocked && sh.position < target) {
          sh.yblk.resize(block * samples);
          sh.clsv.resize(block);
          sh.clsb.resize(block);
          if (defer_hw) {
            sh.vblk.resize(block * samples);
            sh.zblk.resize(block * samples * dps);
            sh.icblk.resize(ncyc * block);
            sh.zvblk.resize(block * samples);
          }
          if (!fast) sh.hblk.resize(block * 256);
        }
        while (sh.position < target) {
          const std::size_t bn =
              blocked ? std::min(block, target - sh.position) : 1;
          const double t0 = timed ? obs::monotonic_seconds() : 0.0;
          double t1 = 0.0;
          if (!blocked) {
            // block == 1: the exact per-trace shard loop body.
            crypto::Block pt;
            for (auto& b : pt) b = static_cast<std::uint8_t>(sh.rng.next());
            const auto enc = sh.victim.encrypt(pt);
            campaign.make_voltages(enc, sh.rng, sh.v,
                                   sh.fence ? &*sh.fence : nullptr);
            if (fast) {
              campaign.read_sensor_fast(plan, sh.v, result.bits_of_interest,
                                        sh.rng, sh.y);
              t1 = timed ? obs::monotonic_seconds() : 0.0;
              sh.cls.add_trace(model.class_value(enc.ciphertext),
                               model.class_bit(enc.ciphertext), sh.y);
            } else {
              campaign.read_sensor(sh.v, result.bits_of_interest, sh.rng,
                                   sh.y);
              t1 = timed ? obs::monotonic_seconds() : 0.0;
              model.hypotheses(enc.ciphertext, sh.h);
              sh.engine.add_trace(sh.h, sh.y);
            }
            // v1 round-robin ownership: shard i's p-th trace is global
            // trace p*T + i (zero-based).
            if (store_writer) {
              const std::size_t g = sh.position * T + i;
              store_writer->record_meta(g, pt, enc.ciphertext);
              store_writer->record_readings(g, sh.y.data());
            }
          } else {
            // Generation pass: all RNG consumption, per-trace order —
            // identical streams to the per-trace shard loop.
            for (std::size_t b = 0; b < bn; ++b) {
              crypto::Block pt;
              for (auto& pb : pt) {
                pb = static_cast<std::uint8_t>(sh.rng.next());
              }
              const auto enc = sh.victim.encrypt(pt);
              if (defer_hw) {
                // Same staging as the serial engine: scaled currents
                // cycle-major, noise draws in per-trace order, matvec
                // deferred to the compute pass.
                defense::ActiveFence* fence =
                    sh.fence ? &*sh.fence : nullptr;
                for (std::size_t c = 0; c < ncyc; ++c) {
                  double i = enc.cycle_current[c];
                  if (fence != nullptr) i += fence->next_cycle_current();
                  i *= coupling;
                  sh.icblk[c * block + b] = i;
                }
                FastNormal::instance().fill(
                    sh.rng, sh.zvblk.data() + b * samples, samples);
                FastNormal::instance().fill(
                    sh.rng, sh.zblk.data() + b * samples * dps,
                    samples * dps);
              } else if (fast) {
                campaign.make_voltages(enc, sh.rng, sh.v,
                                       sh.fence ? &*sh.fence : nullptr);
                campaign.read_sensor_fast(plan, sh.v,
                                          result.bits_of_interest, sh.rng,
                                          sh.y);
                std::copy(sh.y.begin(), sh.y.end(),
                          sh.yblk.begin() + b * samples);
              } else {
                campaign.make_voltages(enc, sh.rng, sh.v,
                                       sh.fence ? &*sh.fence : nullptr);
                campaign.read_sensor(sh.v, result.bits_of_interest, sh.rng,
                                     sh.y);
                std::copy(sh.y.begin(), sh.y.end(),
                          sh.yblk.begin() + b * samples);
                model.hypotheses(enc.ciphertext, sh.h);
                std::copy(sh.h.begin(), sh.h.end(),
                          sh.hblk.begin() + b * 256);
              }
              if (fast) {
                sh.clsv[b] = model.class_value(enc.ciphertext);
                sh.clsb[b] = model.class_bit(enc.ciphertext);
              }
              if (store_writer) {
                store_writer->record_meta((sh.position + b) * T + i, pt,
                                          enc.ciphertext);
              }
            }
            // Compute pass: RNG-free lane-parallel kernels.
            if (defer_hw) {
              campaign.response_.voltages_block(sh.icblk.data(), bn, block,
                                                sh.vblk.data(), simd);
              for (std::size_t i = 0; i < bn * samples; ++i) {
                sh.vblk[i] += 0.0 + env_noise_v * sh.zvblk[i];
              }
              setup_.sensor().toggle_hw_block(plan.hw, sh.vblk.data(),
                                              bn * samples, sh.zblk.data(),
                                              sh.yblk.data(), simd);
            }
            t1 = timed ? obs::monotonic_seconds() : 0.0;
            if (fast) {
              sh.cls.add_block(sh.clsv.data(), sh.clsb.data(),
                               sh.yblk.data(), bn);
            } else {
              sh.engine.add_traces(sh.hblk.data(), sh.yblk.data(), bn);
            }
            ++sh.blocks;
            // v1 blocked rows scatter stride-T into the global order.
            if (store_writer) {
              for (std::size_t b = 0; b < bn; ++b) {
                store_writer->record_readings((sh.position + b) * T + i,
                                              sh.yblk.data() + b * samples);
              }
            }
          }
          sh.position += bn;
          if (timed) {
            const double t2 = obs::monotonic_seconds();
            sh.kernel_s += t1 - t0;
            sh.cpa_s += t2 - t1;
          }
        }
      });
    }
    covered = cp;
    if (ob != nullptr && blocked) {
      // Per-shard block counts, batched to the checkpoint boundary like
      // the phase timers (workers never touch the registry mid-segment).
      double nb = 0.0;
      for (Shard& sh : shards) {
        nb += static_cast<double>(sh.blocks);
        sh.blocks = 0;
      }
      if (nb > 0.0) ob->metrics().add("slm.kernel.blocks_total", nb);
    }
    // Re-merge from scratch in fixed shard order: deterministic and,
    // because sensor readings are integer-valued, bit-exact vs. any
    // other summation order.
    {
      std::optional<obs::CampaignObserver::Span> merge_span;
      if (ob != nullptr) merge_span.emplace(ob->span("merge"));
      const double m0 = timed ? obs::monotonic_seconds() : 0.0;
      if (fast) {
        sca::XorClassCpa merged_cls(samples);
        for (const Shard& sh : shards) merged_cls.merge(sh.cls);
        merged = merged_cls.fold(model.pattern().data());
      } else {
        merged = sca::CpaEngine(256, samples);
        for (const Shard& sh : shards) merged.merge(sh.engine);
      }
      if (timed && !shards.empty()) {
        // Book merge/fold time against the CPA phase of shard 0 so the
        // final sum over shards counts it exactly once.
        shards[0].cpa_s += obs::monotonic_seconds() - m0;
      }
    }
    result.progress.push_back(
        sca::snapshot_progress(merged, result.correct_guess));

    if (ob != nullptr) {
      const sca::CpaProgressPoint& p = result.progress.back();
      const double now = obs::monotonic_seconds();
      const double seg_rate =
          now > seg_time
              ? static_cast<double>(cp - seg_traces) / (now - seg_time)
              : 0.0;
      ob->metrics().add("slm.campaign.checkpoints_total");
      ob->metrics().set("slm.campaign.traces_done", static_cast<double>(cp));
      ob->metrics().set("slm.cpa.best_guess",
                        static_cast<double>(p.best_guess));
      ob->metrics().set("slm.cpa.correct_corr", p.correct_corr);
      ob->metrics().set("slm.cpa.corr_margin",
                        p.correct_corr - p.best_wrong_corr);
      ob->metrics().observe("slm.campaign.segment_traces_per_sec", seg_rate);
      std::string shard_traces = "[";
      for (unsigned i = 0; i < T; ++i) {
        if (i > 0) shard_traces += ',';
        shard_traces += std::to_string(shards[i].position);
      }
      shard_traces += ']';
      ob->event("checkpoint",
                obs::JsonWriter()
                    .field("traces", static_cast<std::uint64_t>(p.traces))
                    .field("best_guess",
                           static_cast<std::uint64_t>(p.best_guess))
                    .field("correct_rank",
                           static_cast<std::uint64_t>(p.correct_rank))
                    .field("correct_corr", p.correct_corr)
                    .field("best_wrong_corr", p.best_wrong_corr)
                    .field("corr_margin", p.correct_corr - p.best_wrong_corr)
                    .field("traces_per_sec", seg_rate)
                    .raw("shard_traces", shard_traces));
      seg_traces = cp;
      seg_time = now;
    }

    if (snapshotting) {
      std::optional<obs::CampaignObserver::Span> ckpt_span;
      if (ob != nullptr) ckpt_span.emplace(ob->span("checkpoint"));
      const double s0 = obs::monotonic_seconds();
      CampaignCheckpoint ck;
      ck.seed = cfg_.seed;
      ck.total_traces = cfg_.traces;
      ck.mode = static_cast<std::uint32_t>(cfg_.mode);
      ck.shards = T;
      ck.samples = samples;
      ck.target_key_byte = cfg_.target_key_byte;
      ck.target_bit = cfg_.target_bit;
      ck.single_bit = campaign.cfg_.single_bit;
      ck.compiled = fast;
      ck.block = block;
      ck.rng_contract = static_cast<std::uint32_t>(contract);
      ck.traces_done = cp;
      ck.shard_state.reserve(T);
      for (unsigned i = 0; i < T; ++i) {
        const Shard& sh = shards[i];
        CheckpointShard cs;
        cs.position = sh.position;
        cs.has_fence = sh.fence.has_value();
        if (!v2) {
          // v2 snapshots carry no stream state: every stream re-derives
          // from (seed, trace index) on resume, so the fields stay zero.
          cs.rng = sh.rng.state();
          cs.victim = sh.victim.register_snapshot();
          if (sh.fence) cs.fence_rng = sh.fence->rng_state();
        }
        ByteWriter acc;
        if (fast) {
          sh.cls.save(acc);
        } else {
          sh.engine.save(acc);
        }
        cs.accumulator = acc.bytes();
        ck.shard_state.push_back(std::move(cs));
      }
      ck.progress = result.progress;
      const std::size_t bytes = save_checkpoint(cfg_.checkpoint_dir, ck);
      result.snapshot_path = checkpoint_file(cfg_.checkpoint_dir);
      const double io = obs::monotonic_seconds() - s0;
      ckpt_io_s += io;
      if (ob != nullptr) {
        ob->metrics().add("slm.checkpoint.snapshots_total");
        ob->metrics().add("slm.checkpoint.bytes_total",
                          static_cast<double>(bytes));
        ob->metrics().observe("slm.checkpoint.write_seconds", io);
        ob->event("snapshot",
                  obs::JsonWriter()
                      .field("traces", static_cast<std::uint64_t>(cp))
                      .field("bytes", static_cast<std::uint64_t>(bytes))
                      .field("seconds", io)
                      .field("path", result.snapshot_path));
      }
    }

    if (cfg_.halt_after_traces > 0 && cp >= cfg_.halt_after_traces) {
      if (ob != nullptr) {
        ob->event("halt",
                  obs::JsonWriter()
                      .field("traces", static_cast<std::uint64_t>(cp))
                      .field("path", result.snapshot_path));
      }
      throw CampaignHalted(cp, result.snapshot_path);
    }
  }

  if (store_writer) finalize_trace_store(*store_writer, ob);

  result.traces_run = merged.trace_count();
  result.final_max_abs_corr = merged.max_abs_correlation();
  result.recovered_guess = static_cast<std::uint8_t>(merged.best_guess());
  result.key_recovered = result.recovered_guess == result.correct_guess;
  result.mtd = sca::estimate_mtd(result.progress);
  result.checkpoint_io_seconds = ckpt_io_s;
  for (const Shard& sh : shards) {
    result.kernel_seconds += sh.kernel_s;
    result.cpa_seconds += sh.cpa_s;
  }
  if (ob != nullptr) {
    ob->metrics().set("slm.campaign.kernel_seconds", result.kernel_seconds);
    ob->metrics().set("slm.campaign.cpa_seconds", result.cpa_seconds);
    ob->metrics().set("slm.campaign.checkpoint_io_seconds", ckpt_io_s);
    ob->metrics().set("slm.campaign.selection_seconds",
                      result.selection_seconds);
  }
  return result;
}

FullKeyRunResult ParallelCampaign::run_fullkey(const FullKeyConfig& fk) {
  const auto t0 = std::chrono::steady_clock::now();
  FullKeyRunResult result;
  if (threads_ <= 1) {
    CpaCampaign campaign(setup_, cfg_);
    result = campaign.run_fullkey(fk);
  } else {
    result = run_fullkey_sharded(fk);
  }
  result.threads_used = threads_;
  result.capture_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

FullKeyRunResult ParallelCampaign::run_fullkey_sharded(
    const FullKeyConfig& fk) {
  CpaCampaign campaign(setup_, cfg_);
  obs::CampaignObserver* const ob = cfg_.observer;
  constexpr std::size_t kBytes = sca::MultiByteCpa::kBytes;
  FullKeyRunResult result;
  result.mode = cfg_.mode;
  result.sample_times_ns = campaign.sample_times_;

  std::vector<sca::LastRoundBitModel> models;
  models.reserve(kBytes);
  for (std::size_t j = 0; j < kBytes; ++j) {
    models.emplace_back(j, cfg_.target_bit);
  }
  const crypto::Block lrk = setup_.victim().cipher().last_round_key();
  for (std::size_t j = 0; j < kBytes; ++j) {
    result.bytes[j].correct = models[j].correct_guess(lrk);
  }

  // Trace store, fingerprinted before bit resolution (see run_sharded).
  std::unique_ptr<store::TraceStoreWriter> store_writer;
  if (!cfg_.store_out.empty()) {
    SLM_REQUIRE(!cfg_.resume,
                "store_out: cannot combine with resume — traces captured "
                "before the snapshot would be missing from the store");
    store_writer = std::make_unique<store::TraceStoreWriter>(
        cfg_.store_out,
        campaign.store_identity(store::StoreKind::kFullKey, cfg_.traces));
    store_writer->set_capture_threads(threads_);
  }

  {
    const auto sel_start = std::chrono::steady_clock::now();
    std::optional<obs::CampaignObserver::Span> span;
    if (ob != nullptr) span.emplace(ob->span("selection"));
    CampaignResult scratch;
    campaign.resolve_sensor_bits(&scratch);
    result.bits_of_interest = std::move(scratch.bits_of_interest);
    result.selection_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sel_start)
            .count();
  }
  result.single_bit = campaign.cfg_.single_bit;
  if (store_writer) {
    store_writer->set_resolved_single_bit(campaign.cfg_.single_bit);
  }

  auto schedule = cfg_.checkpoints.empty() ? default_checkpoints(cfg_.traces)
                                           : cfg_.checkpoints;
  std::sort(schedule.begin(), schedule.end());
  std::vector<std::size_t> checkpoints;
  for (std::size_t c : schedule) {
    if (c > 0 && c <= cfg_.traces) checkpoints.push_back(c);
  }
  if (checkpoints.empty() || checkpoints.back() != cfg_.traces) {
    checkpoints.push_back(cfg_.traces);
  }

  const std::size_t samples = campaign.sample_times_.size();
  const unsigned T = threads_;

  const RngContract contract = resolve_contract(cfg_.rng_contract);
  const bool v2 = contract == RngContract::kV2;
  result.rng_contract = contract;

  const std::size_t block = resolve_block(cfg_.block);
  const bool simd = resolve_simd(cfg_.simd);
  result.block_size = block;
  const bool blocked = block > 1;

  // As in the serial full-key engine, accumulation always runs through
  // MultiByteCpa; compiled_kernels only selects the sensor read path.
  const bool fast = cfg_.compiled_kernels;
  const CpaCampaign::SensorPlan plan =
      fast ? campaign.make_sensor_plan(result.bits_of_interest)
           : CpaCampaign::SensorPlan{};
  const bool defer_hw = blocked && fast && plan.batched &&
                        cfg_.mode == SensorMode::kBenignHw;
  const std::size_t dps = plan.hw.draws_per_sample;
  const std::size_t ncyc = campaign.response_.cycle_count();
  const double coupling = setup_.effective_coupling();
  const double env_noise_v = setup_.calibration().env_noise_v;

  struct Shard {
    crypto::AesDatapathModel victim;
    std::optional<defense::ActiveFence> fence;
    Xoshiro256 rng{0};
    sca::MultiByteCpa mb;
    std::size_t position = 0;
    std::vector<double> v;
    std::vector<double> y;
    std::vector<double> vblk;
    std::vector<double> zblk;
    std::vector<double> icblk;
    std::vector<double> zvblk;
    std::vector<double> yblk;
    std::vector<std::uint8_t> clsv;
    std::vector<std::uint8_t> clsb;
    double kernel_s = 0.0;
    double cpa_s = 0.0;
    std::size_t blocks = 0;

    Shard(const crypto::AesDatapathModel& vic, std::size_t samples)
        : victim(vic), mb(samples) {}
  };
  std::vector<Shard> shards;
  shards.reserve(T);
  const bool fenced = cfg_.fence.random_current_a > 0.0 ||
                      cfg_.fence.base_current_a > 0.0;
  for (unsigned i = 0; i < T; ++i) {
    Shard sh(setup_.victim(), samples);
    sh.rng = Xoshiro256::stream(cfg_.seed, i);
    if (fenced) {
      defense::ActiveFenceConfig fc = cfg_.fence;
      // v1: decorrelated sequential fence streams per shard. v2 derives
      // fence draws per trace from the unperturbed seed (see run_sharded).
      if (!v2) fc.seed ^= 0x9e3779b97f4a7c15ull * (i + 1);
      sh.fence.emplace(fc);
    }
    shards.push_back(std::move(sh));
  }

  struct ByteState {
    bool converged = false;
    std::size_t stable = 0;
    std::size_t prev_best = 256;
  };
  std::array<ByteState, kBytes> state;

  std::size_t traces_done = 0;
  const bool snapshotting = !cfg_.checkpoint_dir.empty();
  if (cfg_.resume && snapshotting) {
    if (auto ck = load_checkpoint(cfg_.checkpoint_dir)) {
      require_checkpoint_matches(*ck, campaign.cfg_, T, samples,
                                 static_cast<std::uint32_t>(contract),
                                 /*fullkey=*/true);
      for (unsigned i = 0; i < T; ++i) {
        const CheckpointShard& cs = ck->shard_state[i];
        Shard& sh = shards[i];
        SLM_REQUIRE(cs.has_fence == sh.fence.has_value(),
                    "resume: fence configuration differs from snapshot");
        sh.position = static_cast<std::size_t>(cs.position);
        if (!v2) {
          sh.rng.set_state(cs.rng);
          sh.victim.restore_registers(cs.victim);
          if (sh.fence) sh.fence->set_rng_state(cs.fence_rng);
        }
        ByteReader acc(cs.accumulator.data(), cs.accumulator.size());
        sh.mb.load(acc);
        SLM_REQUIRE(acc.done(), "resume: trailing accumulator bytes");
      }
      for (std::size_t j = 0; j < kBytes; ++j) {
        const FullKeyByteCheckpoint& fb = ck->fullkey_bytes[j];
        state[j].converged = fb.converged;
        state[j].stable = static_cast<std::size_t>(fb.stable);
        state[j].prev_best = static_cast<std::size_t>(fb.prev_best);
        result.bytes[j].progress = fb.progress;
        if (fb.converged) {
          FullKeyByteResult& br = result.bytes[j];
          br.recovered = fb.recovered;
          br.traces = static_cast<std::size_t>(fb.frozen_traces);
          br.final_max_abs_corr = fb.frozen_corr;
          br.early_exited = true;
          br.success = br.recovered == br.correct;
        }
      }
      traces_done = static_cast<std::size_t>(ck->traces_done);
      result.resumed_from = traces_done;
      checkpoints.erase(
          std::remove_if(checkpoints.begin(), checkpoints.end(),
                         [&](std::size_t c) { return c <= traces_done; }),
          checkpoints.end());
      log_info() << "fullkey: resumed from "
                 << checkpoint_file(cfg_.checkpoint_dir) << " at trace "
                 << traces_done << "/" << cfg_.traces << " across " << T
                 << " shards";
      if (ob != nullptr) {
        ob->metrics().add("slm.checkpoint.resumes_total");
        ob->event("resume",
                  obs::JsonWriter()
                      .field("traces_done",
                             static_cast<std::uint64_t>(traces_done))
                      .field("shards", static_cast<std::uint64_t>(T))
                      .field("path", checkpoint_file(cfg_.checkpoint_dir)));
      }
    }
  }

  if (ob != nullptr) {
    ob->metrics().set("slm.campaign.traces_target",
                      static_cast<double>(cfg_.traces));
    ob->metrics().set("slm.kernel.block_size", static_cast<double>(block));
    ob->metrics().set("slm.fullkey.bytes_total",
                      static_cast<double>(kBytes));
    ob->event("run_start",
              obs::JsonWriter()
                  .field("mode", sensor_mode_name(cfg_.mode))
                  .field("fullkey", true)
                  .field("traces", static_cast<std::uint64_t>(cfg_.traces))
                  .field("seed", static_cast<std::uint64_t>(cfg_.seed))
                  .field("threads", static_cast<std::uint64_t>(T))
                  .field("compiled", fast)
                  .field("block", static_cast<std::uint64_t>(block))
                  .field("rng_contract", rng_contract_name(contract))
                  .field("resumed_from",
                         static_cast<std::uint64_t>(result.resumed_from)));
  }

  const bool timed = ob != nullptr;
  double ckpt_io_s = 0.0;
  std::size_t seg_traces = traces_done;
  double seg_time = timed ? obs::monotonic_seconds() : 0.0;

  std::size_t converged_count = 0;
  for (const ByteState& s : state) {
    if (s.converged) ++converged_count;
  }

  // Shard over the caller's pool when one is borrowed (the `slm serve`
  // daemon shares ONE pool across every tenant's campaigns); otherwise
  // own a private pool for the duration of the run.
  std::optional<ThreadPool> owned_pool;
  ThreadPool& pool = cfg_.pool != nullptr ? *cfg_.pool : owned_pool.emplace(T);
  std::size_t covered = traces_done;
  std::size_t merged_traces = traces_done;
  for (std::size_t cp : checkpoints) {
    {
      std::optional<obs::CampaignObserver::Span> capture_span;
      if (ob != nullptr) capture_span.emplace(ob->span("capture"));
      pool.run_indexed(T, [&](std::size_t i) {
        Shard& sh = shards[i];
        // Per-trace label rows for the 16 byte models, trace-major as
        // MultiByteCpa::add_block expects.
        const auto label = [&](const crypto::Block& ct, std::uint8_t* v16,
                               std::uint8_t* b16) {
          for (std::size_t j = 0; j < kBytes; ++j) {
            v16[j] = models[j].class_value(ct);
            b16[j] = models[j].class_bit(ct);
          }
        };
        if (v2) {
          const std::size_t n = cp - covered;
          const std::size_t g0 = covered + i * n / T;
          const std::size_t g1 = covered + (i + 1) * n / T;
          if (g0 >= g1) return;
          if (blocked) {
            sh.yblk.resize(block * samples);
            sh.clsv.resize(block * kBytes);
            sh.clsb.resize(block * kBytes);
            if (defer_hw) {
              sh.vblk.resize(block * samples);
              sh.zblk.resize(block * samples * dps);
              sh.icblk.resize(ncyc * block);
              sh.zvblk.resize(block * samples);
            }
          }
          crypto::AesDatapathModel::RegisterSnapshot regs{};
          if (g0 > 0) {
            Xoshiro256 prev = Xoshiro256::trace_stream(
                cfg_.seed, kTraceDomainCapture, g0 - 1);
            crypto::Block prev_pt;
            for (auto& b : prev_pt) {
              b = static_cast<std::uint8_t>(prev.next());
            }
            regs = sh.victim.registers_after(prev_pt, g0 - 1);
          }
          std::size_t g = g0;
          while (g < g1) {
            const std::size_t bn = blocked ? std::min(block, g1 - g) : 1;
            const double t0 = timed ? obs::monotonic_seconds() : 0.0;
            double t1 = 0.0;
            for (std::size_t b = 0; b < bn; ++b) {
              const std::size_t gb = g + b;
              Xoshiro256 rng_t = Xoshiro256::trace_stream(
                  cfg_.seed, kTraceDomainCapture, gb);
              crypto::Block pt;
              for (auto& pb : pt) {
                pb = static_cast<std::uint8_t>(rng_t.next());
              }
              const auto enc = sh.victim.encrypt_stateless(pt, gb, regs);
              if (defer_hw) {
                if (sh.fence) {
                  Xoshiro256 frng = sh.fence->trace_rng(gb);
                  for (std::size_t c = 0; c < ncyc; ++c) {
                    double cur = enc.cycle_current[c];
                    cur += sh.fence->cycle_current(frng);
                    cur *= coupling;
                    sh.icblk[c * block + b] = cur;
                  }
                } else {
                  for (std::size_t c = 0; c < ncyc; ++c) {
                    double cur = enc.cycle_current[c];
                    cur *= coupling;
                    sh.icblk[c * block + b] = cur;
                  }
                }
                FastNormal::instance().fill(
                    rng_t, sh.zvblk.data() + b * samples, samples);
                FastNormal::instance().fill(
                    rng_t, sh.zblk.data() + b * samples * dps,
                    samples * dps);
              } else {
                std::optional<Xoshiro256> frng;
                Xoshiro256* fr = nullptr;
                if (sh.fence) {
                  frng.emplace(sh.fence->trace_rng(gb));
                  fr = &*frng;
                }
                campaign.make_voltages(enc, rng_t, sh.v,
                                       sh.fence ? &*sh.fence : nullptr, fr);
                if (fast) {
                  campaign.read_sensor_fast(plan, sh.v,
                                            result.bits_of_interest, rng_t,
                                            sh.y);
                } else {
                  campaign.read_sensor(sh.v, result.bits_of_interest, rng_t,
                                       sh.y);
                }
                if (!blocked) {
                  std::uint8_t v16[kBytes];
                  std::uint8_t b16[kBytes];
                  label(enc.ciphertext, v16, b16);
                  t1 = timed ? obs::monotonic_seconds() : 0.0;
                  sh.mb.add_trace(v16, b16, sh.y);
                } else {
                  std::copy(sh.y.begin(), sh.y.end(),
                            sh.yblk.begin() + b * samples);
                }
              }
              if (blocked) {
                label(enc.ciphertext, sh.clsv.data() + b * kBytes,
                      sh.clsb.data() + b * kBytes);
              }
              if (store_writer) {
                store_writer->record_meta(gb, pt, enc.ciphertext);
                if (!blocked) store_writer->record_readings(gb, sh.y.data());
              }
            }
            if (blocked) {
              if (defer_hw) {
                campaign.response_.voltages_block(sh.icblk.data(), bn, block,
                                                  sh.vblk.data(), simd);
                for (std::size_t k = 0; k < bn * samples; ++k) {
                  sh.vblk[k] += 0.0 + env_noise_v * sh.zvblk[k];
                }
                setup_.sensor().toggle_hw_block(plan.hw, sh.vblk.data(),
                                                bn * samples,
                                                sh.zblk.data(),
                                                sh.yblk.data(), simd);
              }
              t1 = timed ? obs::monotonic_seconds() : 0.0;
              sh.mb.add_block(sh.clsv.data(), sh.clsb.data(),
                              sh.yblk.data(), bn);
              ++sh.blocks;
              if (store_writer) {
                store_writer->record_readings_block(g, sh.yblk.data(), bn);
              }
            }
            sh.position += bn;
            g += bn;
            if (timed) {
              const double t2 = obs::monotonic_seconds();
              sh.kernel_s += t1 - t0;
              sh.cpa_s += t2 - t1;
            }
          }
          return;
        }
        const std::size_t target = shard_quota(cp, i, T);
        if (blocked && sh.position < target) {
          sh.yblk.resize(block * samples);
          sh.clsv.resize(block * kBytes);
          sh.clsb.resize(block * kBytes);
          if (defer_hw) {
            sh.vblk.resize(block * samples);
            sh.zblk.resize(block * samples * dps);
            sh.icblk.resize(ncyc * block);
            sh.zvblk.resize(block * samples);
          }
        }
        while (sh.position < target) {
          const std::size_t bn =
              blocked ? std::min(block, target - sh.position) : 1;
          const double t0 = timed ? obs::monotonic_seconds() : 0.0;
          double t1 = 0.0;
          if (!blocked) {
            crypto::Block pt;
            for (auto& b : pt) b = static_cast<std::uint8_t>(sh.rng.next());
            const auto enc = sh.victim.encrypt(pt);
            campaign.make_voltages(enc, sh.rng, sh.v,
                                   sh.fence ? &*sh.fence : nullptr);
            if (fast) {
              campaign.read_sensor_fast(plan, sh.v, result.bits_of_interest,
                                        sh.rng, sh.y);
            } else {
              campaign.read_sensor(sh.v, result.bits_of_interest, sh.rng,
                                   sh.y);
            }
            std::uint8_t v16[kBytes];
            std::uint8_t b16[kBytes];
            label(enc.ciphertext, v16, b16);
            t1 = timed ? obs::monotonic_seconds() : 0.0;
            sh.mb.add_trace(v16, b16, sh.y);
            // v1 round-robin: shard i's p-th trace is global p*T + i.
            if (store_writer) {
              const std::size_t g = sh.position * T + i;
              store_writer->record_meta(g, pt, enc.ciphertext);
              store_writer->record_readings(g, sh.y.data());
            }
          } else {
            for (std::size_t b = 0; b < bn; ++b) {
              crypto::Block pt;
              for (auto& pb : pt) {
                pb = static_cast<std::uint8_t>(sh.rng.next());
              }
              const auto enc = sh.victim.encrypt(pt);
              if (defer_hw) {
                defense::ActiveFence* fence =
                    sh.fence ? &*sh.fence : nullptr;
                for (std::size_t c = 0; c < ncyc; ++c) {
                  double cur = enc.cycle_current[c];
                  if (fence != nullptr) cur += fence->next_cycle_current();
                  cur *= coupling;
                  sh.icblk[c * block + b] = cur;
                }
                FastNormal::instance().fill(
                    sh.rng, sh.zvblk.data() + b * samples, samples);
                FastNormal::instance().fill(
                    sh.rng, sh.zblk.data() + b * samples * dps,
                    samples * dps);
              } else {
                campaign.make_voltages(enc, sh.rng, sh.v,
                                       sh.fence ? &*sh.fence : nullptr);
                if (fast) {
                  campaign.read_sensor_fast(plan, sh.v,
                                            result.bits_of_interest, sh.rng,
                                            sh.y);
                } else {
                  campaign.read_sensor(sh.v, result.bits_of_interest,
                                       sh.rng, sh.y);
                }
                std::copy(sh.y.begin(), sh.y.end(),
                          sh.yblk.begin() + b * samples);
              }
              label(enc.ciphertext, sh.clsv.data() + b * kBytes,
                    sh.clsb.data() + b * kBytes);
              if (store_writer) {
                store_writer->record_meta((sh.position + b) * T + i, pt,
                                          enc.ciphertext);
              }
            }
            if (defer_hw) {
              campaign.response_.voltages_block(sh.icblk.data(), bn, block,
                                                sh.vblk.data(), simd);
              for (std::size_t k = 0; k < bn * samples; ++k) {
                sh.vblk[k] += 0.0 + env_noise_v * sh.zvblk[k];
              }
              setup_.sensor().toggle_hw_block(plan.hw, sh.vblk.data(),
                                              bn * samples, sh.zblk.data(),
                                              sh.yblk.data(), simd);
            }
            t1 = timed ? obs::monotonic_seconds() : 0.0;
            sh.mb.add_block(sh.clsv.data(), sh.clsb.data(), sh.yblk.data(),
                            bn);
            ++sh.blocks;
            if (store_writer) {
              for (std::size_t b = 0; b < bn; ++b) {
                store_writer->record_readings((sh.position + b) * T + i,
                                              sh.yblk.data() + b * samples);
              }
            }
          }
          sh.position += bn;
          if (timed) {
            const double t2 = obs::monotonic_seconds();
            sh.kernel_s += t1 - t0;
            sh.cpa_s += t2 - t1;
          }
        }
      });
    }
    covered = cp;
    if (ob != nullptr && blocked) {
      double nb = 0.0;
      for (Shard& sh : shards) {
        nb += static_cast<double>(sh.blocks);
        sh.blocks = 0;
      }
      if (nb > 0.0) ob->metrics().add("slm.kernel.blocks_total", nb);
    }

    // Re-merge from scratch in fixed shard order, then run the per-byte
    // folds and the early-exit state machine on the coordinator —
    // bit-exact vs. the serial engine for any shard count under v2.
    {
      std::optional<obs::CampaignObserver::Span> merge_span;
      if (ob != nullptr) merge_span.emplace(ob->span("merge"));
      const double m0 = timed ? obs::monotonic_seconds() : 0.0;
      sca::MultiByteCpa merged(samples);
      for (const Shard& sh : shards) merged.merge(sh.mb);
      merged_traces = merged.trace_count();
      for (std::size_t j = 0; j < kBytes; ++j) {
        if (state[j].converged) continue;
        const sca::CpaEngine folded =
            merged.fold(j, models[j].pattern().data());
        sca::CpaProgressPoint p =
            sca::snapshot_progress(folded, result.bytes[j].correct);
        const double margin = sca::winner_margin(p);
        const bool qualify = fk.early_exit &&
                             cp >= fk.early_exit_min_traces &&
                             state[j].prev_best == p.best_guess &&
                             margin >= fk.early_exit_margin;
        if (qualify) {
          ++state[j].stable;
        } else {
          state[j].stable = 0;
        }
        state[j].prev_best = p.best_guess;
        result.bytes[j].progress.push_back(std::move(p));
        if (qualify && state[j].stable >= fk.early_exit_stable) {
          const sca::CpaProgressPoint& fp = result.bytes[j].progress.back();
          FullKeyByteResult& br = result.bytes[j];
          state[j].converged = true;
          ++converged_count;
          br.recovered = static_cast<std::uint8_t>(fp.best_guess);
          br.traces = cp;
          br.final_max_abs_corr = fp.max_abs_corr;
          br.early_exited = true;
          br.success = br.recovered == br.correct;
          if (ob != nullptr) {
            ob->metrics().add("slm.fullkey.converged_total");
            ob->metrics().observe("slm.fullkey.convergence_traces",
                                  static_cast<double>(cp));
            ob->event("fullkey_byte_converged",
                      obs::JsonWriter()
                          .field("byte", static_cast<std::uint64_t>(j))
                          .field("traces", static_cast<std::uint64_t>(cp))
                          .field("guess",
                                 static_cast<std::uint64_t>(br.recovered))
                          .field("margin", margin));
          }
        }
      }
      if (timed && !shards.empty()) {
        shards[0].cpa_s += obs::monotonic_seconds() - m0;
      }
    }

    if (ob != nullptr) {
      const double now = obs::monotonic_seconds();
      const double seg_rate =
          now > seg_time
              ? static_cast<double>(cp - seg_traces) / (now - seg_time)
              : 0.0;
      ob->metrics().add("slm.campaign.checkpoints_total");
      ob->metrics().set("slm.campaign.traces_done", static_cast<double>(cp));
      ob->metrics().set("slm.fullkey.bytes_converged",
                        static_cast<double>(converged_count));
      ob->metrics().observe("slm.campaign.segment_traces_per_sec", seg_rate);
      std::string shard_traces = "[";
      for (unsigned i = 0; i < T; ++i) {
        if (i > 0) shard_traces += ',';
        shard_traces += std::to_string(shards[i].position);
      }
      shard_traces += ']';
      ob->event("fullkey_checkpoint",
                obs::JsonWriter()
                    .field("traces", static_cast<std::uint64_t>(cp))
                    .field("bytes_converged",
                           static_cast<std::uint64_t>(converged_count))
                    .field("bytes_active",
                           static_cast<std::uint64_t>(kBytes -
                                                      converged_count))
                    .field("traces_per_sec", seg_rate)
                    .raw("shard_traces", shard_traces));
      seg_traces = cp;
      seg_time = now;
    }

    if (snapshotting) {
      std::optional<obs::CampaignObserver::Span> ckpt_span;
      if (ob != nullptr) ckpt_span.emplace(ob->span("checkpoint"));
      const double s0 = obs::monotonic_seconds();
      CampaignCheckpoint ck;
      ck.seed = cfg_.seed;
      ck.total_traces = cfg_.traces;
      ck.mode = static_cast<std::uint32_t>(cfg_.mode);
      ck.shards = T;
      ck.samples = samples;
      ck.target_key_byte = cfg_.target_key_byte;
      ck.target_bit = cfg_.target_bit;
      ck.single_bit = campaign.cfg_.single_bit;
      ck.compiled = fast;
      ck.block = block;
      ck.rng_contract = static_cast<std::uint32_t>(contract);
      ck.fullkey = true;
      ck.traces_done = cp;
      ck.shard_state.reserve(T);
      for (unsigned i = 0; i < T; ++i) {
        const Shard& sh = shards[i];
        CheckpointShard cs;
        cs.position = sh.position;
        cs.has_fence = sh.fence.has_value();
        if (!v2) {
          cs.rng = sh.rng.state();
          cs.victim = sh.victim.register_snapshot();
          if (sh.fence) cs.fence_rng = sh.fence->rng_state();
        }
        ByteWriter acc;
        sh.mb.save(acc);
        cs.accumulator = acc.bytes();
        ck.shard_state.push_back(std::move(cs));
      }
      ck.fullkey_bytes.reserve(kBytes);
      for (std::size_t j = 0; j < kBytes; ++j) {
        FullKeyByteCheckpoint fb;
        fb.converged = state[j].converged;
        fb.stable = state[j].stable;
        fb.prev_best = state[j].prev_best;
        if (state[j].converged) {
          fb.frozen_traces = result.bytes[j].traces;
          fb.recovered = result.bytes[j].recovered;
          fb.frozen_corr = result.bytes[j].final_max_abs_corr;
        }
        fb.progress = result.bytes[j].progress;
        ck.fullkey_bytes.push_back(std::move(fb));
      }
      const std::size_t bytes = save_checkpoint(cfg_.checkpoint_dir, ck);
      result.snapshot_path = checkpoint_file(cfg_.checkpoint_dir);
      const double io = obs::monotonic_seconds() - s0;
      ckpt_io_s += io;
      if (ob != nullptr) {
        ob->metrics().add("slm.checkpoint.snapshots_total");
        ob->metrics().add("slm.checkpoint.bytes_total",
                          static_cast<double>(bytes));
        ob->metrics().observe("slm.checkpoint.write_seconds", io);
        ob->event("snapshot",
                  obs::JsonWriter()
                      .field("traces", static_cast<std::uint64_t>(cp))
                      .field("bytes", static_cast<std::uint64_t>(bytes))
                      .field("seconds", io)
                      .field("path", result.snapshot_path));
      }
    }

    if (cfg_.halt_after_traces > 0 && cp >= cfg_.halt_after_traces) {
      if (ob != nullptr) {
        ob->event("halt",
                  obs::JsonWriter()
                      .field("traces", static_cast<std::uint64_t>(cp))
                      .field("path", result.snapshot_path));
      }
      throw CampaignHalted(cp, result.snapshot_path);
    }
  }

  // Every byte that never froze got its final fold at the last
  // checkpoint (the schedule always ends at cfg_.traces).
  for (std::size_t j = 0; j < kBytes; ++j) {
    FullKeyByteResult& br = result.bytes[j];
    if (!state[j].converged) {
      const sca::CpaProgressPoint& fp = br.progress.back();
      br.recovered = static_cast<std::uint8_t>(fp.best_guess);
      br.traces = fp.traces;
      br.final_max_abs_corr = fp.max_abs_corr;
      br.success = br.recovered == br.correct;
    }
    br.mtd = sca::estimate_mtd(br.progress);
  }

  if (store_writer) finalize_trace_store(*store_writer, ob);

  result.traces_run = merged_traces;
  result.checkpoint_io_seconds = ckpt_io_s;
  for (const Shard& sh : shards) {
    result.kernel_seconds += sh.kernel_s;
    result.cpa_seconds += sh.cpa_s;
  }
  if (ob != nullptr) {
    ob->metrics().set("slm.campaign.kernel_seconds", result.kernel_seconds);
    ob->metrics().set("slm.campaign.cpa_seconds", result.cpa_seconds);
    ob->metrics().set("slm.campaign.checkpoint_io_seconds", ckpt_io_s);
    ob->metrics().set("slm.campaign.selection_seconds",
                      result.selection_seconds);
  }
  return result;
}

}  // namespace slm::core
