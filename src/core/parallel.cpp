#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sca/model.hpp"

namespace slm::core {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t shard_quota(std::size_t total, std::size_t shard,
                        std::size_t shards) {
  SLM_REQUIRE(shards > 0 && shard < shards, "shard_quota: bad shard index");
  // Round-robin: 1-based trace t belongs to shard (t - 1) % shards, so
  // shard i has seen floor((total - i + shards - 1) / shards) traces.
  if (total <= shard) return 0;
  return (total - shard + shards - 1) / shards;
}

struct ThreadPool::Impl {
  std::vector<std::thread> workers;
  std::mutex m;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::size_t workers_done = 0;
  std::uint64_t generation = 0;
  bool stop = false;
  std::exception_ptr error;

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lk(m);
      cv_work.wait(lk, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      lk.unlock();
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          (*fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> g(m);
          if (!error) error = std::current_exception();
        }
      }
      lk.lock();
      if (++workers_done == workers.size()) cv_done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(unsigned threads) : impl_(new Impl) {
  SLM_REQUIRE(threads > 0, "ThreadPool: zero threads");
  impl_->workers.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> g(impl_->m);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

unsigned ThreadPool::size() const {
  return static_cast<unsigned>(impl_->workers.size());
}

void ThreadPool::run_indexed(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::unique_lock<std::mutex> lk(impl_->m);
  impl_->fn = &fn;
  impl_->n = n;
  impl_->next.store(0, std::memory_order_relaxed);
  impl_->workers_done = 0;
  impl_->error = nullptr;
  ++impl_->generation;
  impl_->cv_work.notify_all();
  impl_->cv_done.wait(
      lk, [&] { return impl_->workers_done == impl_->workers.size(); });
  impl_->fn = nullptr;
  if (impl_->error) std::rethrow_exception(impl_->error);
}

ParallelCampaign::ParallelCampaign(AttackSetup& setup,
                                   const CampaignConfig& cfg,
                                   unsigned threads)
    : setup_(setup), cfg_(cfg), threads_(resolve_threads(threads)) {
  // Never spin up more shards than traces: each shard must own at least
  // one trace or its CpaEngine would merge as an empty no-op anyway.
  threads_ = static_cast<unsigned>(std::min<std::size_t>(
      threads_, std::max<std::size_t>(1, cfg_.traces)));
}

CampaignResult ParallelCampaign::run() {
  const auto t0 = std::chrono::steady_clock::now();
  CampaignResult result;
  if (threads_ <= 1) {
    // Exact legacy behaviour: same code path, same RNG consumption order
    // as every pre-sharding release.
    CpaCampaign campaign(setup_, cfg_);
    result = campaign.run();
  } else {
    result = run_sharded();
  }
  result.threads_used = threads_;
  result.capture_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

CampaignResult ParallelCampaign::run_sharded() {
  CpaCampaign campaign(setup_, cfg_);
  CampaignResult result;
  result.mode = cfg_.mode;
  result.sample_times_ns = campaign.sample_times_;

  sca::LastRoundBitModel model(cfg_.target_key_byte, cfg_.target_bit);
  result.correct_guess =
      model.correct_guess(setup_.victim().cipher().last_round_key());

  // Selection pre-pass runs serially, exactly as in the serial campaign;
  // it resolves kAutoBit into campaign.cfg_ for read_sensor below.
  campaign.resolve_sensor_bits(&result);
  result.single_bit = campaign.cfg_.single_bit;

  auto schedule = cfg_.checkpoints.empty() ? default_checkpoints(cfg_.traces)
                                           : cfg_.checkpoints;
  std::sort(schedule.begin(), schedule.end());
  std::vector<std::size_t> checkpoints;
  for (std::size_t c : schedule) {
    if (c > 0 && c <= cfg_.traces) checkpoints.push_back(c);
  }
  if (checkpoints.empty() || checkpoints.back() != cfg_.traces) {
    checkpoints.push_back(cfg_.traces);
  }

  const std::size_t samples = campaign.sample_times_.size();
  const unsigned T = threads_;

  // Compiled fast path: a read-only sensor plan shared by all shards (the
  // batch kernels use thread_local scratch, so sharing is safe) and a
  // per-shard class-sum accumulator folded into full CPA sums only at
  // checkpoints. Bit-identical to the reference path — see XorClassCpa.
  const bool fast = cfg_.compiled_kernels;
  const CpaCampaign::SensorPlan plan =
      fast ? campaign.make_sensor_plan(result.bits_of_interest)
           : CpaCampaign::SensorPlan{};

  // The mutable half of the capture pipeline, one copy per shard.
  struct Shard {
    crypto::AesDatapathModel victim;
    std::optional<defense::ActiveFence> fence;
    Xoshiro256 rng;
    sca::CpaEngine engine;
    sca::XorClassCpa cls;
    std::size_t position = 0;
    std::vector<double> v;
    std::vector<double> y;
    std::vector<std::uint8_t> h;
  };
  std::vector<Shard> shards;
  shards.reserve(T);
  const bool fenced = cfg_.fence.random_current_a > 0.0 ||
                      cfg_.fence.base_current_a > 0.0;
  for (unsigned i = 0; i < T; ++i) {
    Shard sh{setup_.victim(),
             std::nullopt,
             Xoshiro256::stream(cfg_.seed, i),
             sca::CpaEngine(256, samples),
             sca::XorClassCpa(samples),
             0,
             {},
             {},
             {}};
    if (fenced) {
      defense::ActiveFenceConfig fc = cfg_.fence;
      fc.seed ^= 0x9e3779b97f4a7c15ull * (i + 1);
      sh.fence.emplace(fc);
    }
    shards.push_back(std::move(sh));
  }

  ThreadPool pool(T);
  sca::CpaEngine merged(256, samples);
  for (std::size_t cp : checkpoints) {
    pool.run_indexed(T, [&](std::size_t i) {
      Shard& sh = shards[i];
      const std::size_t target = shard_quota(cp, i, T);
      for (; sh.position < target; ++sh.position) {
        crypto::Block pt;
        for (auto& b : pt) b = static_cast<std::uint8_t>(sh.rng.next());
        const auto enc = sh.victim.encrypt(pt);
        campaign.make_voltages(enc, sh.rng, sh.v,
                               sh.fence ? &*sh.fence : nullptr);
        if (fast) {
          campaign.read_sensor_fast(plan, sh.v, result.bits_of_interest,
                                    sh.rng, sh.y);
          sh.cls.add_trace(model.class_value(enc.ciphertext),
                           model.class_bit(enc.ciphertext), sh.y);
        } else {
          campaign.read_sensor(sh.v, result.bits_of_interest, sh.rng, sh.y);
          model.hypotheses(enc.ciphertext, sh.h);
          sh.engine.add_trace(sh.h, sh.y);
        }
      }
    });
    // Re-merge from scratch in fixed shard order: deterministic and,
    // because sensor readings are integer-valued, bit-exact vs. any
    // other summation order.
    if (fast) {
      sca::XorClassCpa merged_cls(samples);
      for (const Shard& sh : shards) merged_cls.merge(sh.cls);
      merged = merged_cls.fold(model.pattern().data());
    } else {
      merged = sca::CpaEngine(256, samples);
      for (const Shard& sh : shards) merged.merge(sh.engine);
    }
    result.progress.push_back(
        sca::snapshot_progress(merged, result.correct_guess));
  }

  result.traces_run = merged.trace_count();
  result.final_max_abs_corr = merged.max_abs_correlation();
  result.recovered_guess = static_cast<std::uint8_t>(merged.best_guess());
  result.key_recovered = result.recovered_guess == result.correct_guess;
  result.mtd = sca::estimate_mtd(result.progress);
  return result;
}

}  // namespace slm::core
