// CPA hypothesis model: single-bit register-flip prediction before the
// final S-box, as used by the paper ("textbook CPA using a single bit
// mask model before the final SBox computation", following Schellenberg
// et al., DATE'18).
//
// In the last AES round the state register at position q flips from
// state9[q] to ct[q], and state9[q] = InvSbox(ct[g] ^ k10[g]) with
// g = ShiftRows(q). The hypothesis for key guess k is therefore one bit
// of InvSbox(ct[g] ^ k) ^ ct[q] — a single predicted register bit flip,
// which is a one-bit slice of the column's Hamming-distance leakage.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/aes128.hpp"

namespace slm::sca {

class LastRoundBitModel {
 public:
  /// `guessed_key_byte` g is the index into the last round key (the paper
  /// attacks g = 3, "the 4th byte"); `bit` is the predicted state-flip
  /// bit ("1st bit" = 0).
  LastRoundBitModel(std::size_t guessed_key_byte, std::size_t bit);

  std::size_t guessed_key_byte() const { return g_; }
  std::size_t bit() const { return bit_; }

  /// Register/state position whose flip is predicted (= InvShiftRows(g)).
  std::size_t register_position() const { return q_; }

  /// Hypothesis bit for one key guess.
  std::uint8_t hypothesis(const crypto::Block& ct, std::uint8_t guess) const;

  /// All 256 hypotheses for a ciphertext (resizes `out` to 256).
  void hypotheses(const crypto::Block& ct,
                  std::vector<std::uint8_t>& out) const;

  /// The correct guess given the true last round key.
  std::uint8_t correct_guess(const crypto::Block& last_round_key) const {
    return last_round_key[g_];
  }

  // The model factors as hypothesis(ct, k) = pattern()[class_value(ct) ^
  // k] ^ class_bit(ct) — the shape sca::XorClassCpa bins on.

  /// The ciphertext byte the guess is XORed into.
  std::uint8_t class_value(const crypto::Block& ct) const { return ct[g_]; }

  /// The predicted-register ciphertext bit.
  std::uint8_t class_bit(const crypto::Block& ct) const {
    return static_cast<std::uint8_t>((ct[q_] >> bit_) & 1);
  }

  /// pattern()[z] = bit `bit` of InvSbox(z).
  const std::array<std::uint8_t, 256>& pattern() const { return pattern_; }

 private:
  std::size_t g_;
  std::size_t bit_;
  std::size_t q_;
  std::array<std::uint8_t, 256> pattern_{};
};

}  // namespace slm::sca
