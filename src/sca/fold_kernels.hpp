// Runtime-dispatched integer fold kernels for the CPA / TVLA engines.
//
// The analysis layer accumulates in int64_t (sca/cpa.hpp): sensor
// readings are integer-valued by contract, so the running sums are
// exact integers and addition is genuinely associative — any vector
// width, block size or thread partition lands on the same accumulator
// bits. That frees the hot add loops from the old "replay the exact
// scalar FP expression sequence" constraint: the kernels here are
// selected once per process (AVX2 / SSE2 / scalar) and every level is
// bit-identical by construction, with the scalar level kept as the
// equivalence oracle (tests/sca/fold_dispatch_test.cpp pins it).
//
// Dispatch is resolved at startup from the CPU and the SLM_SIMD knob:
//   SLM_SIMD=0 | scalar   force the scalar reference kernels
//   SLM_SIMD=sse2         force the 2-lane SSE2 kernels
//   SLM_SIMD=avx2         force the 4-lane AVX2 kernels (refused if the
//                         CPU lacks AVX2)
//   unset / other         auto-detect the best level the CPU supports
// The same parse feeds core::resolve_simd, so SLM_SIMD=0 still selects
// the scalar capture kernels exactly as before.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace slm::sca {

enum class DispatchLevel : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

const char* dispatch_level_name(DispatchLevel level);

// --- Overflow budget ----------------------------------------------------
//
// sum_yy grows fastest: after n traces of readings bounded by
// kMaxAbsReading it can reach n * kMaxAbsReading^2. Capping the trace
// budget at kMaxFoldTraces keeps that worst case at 2^62 < 2^63, so the
// int64 accumulators can never overflow (overflow would be UB, not a
// wrong number). Campaigns beyond the budget are refused up front, and
// the engines enforce the same bound incrementally.
inline constexpr std::int64_t kMaxAbsReading = std::int64_t{1} << 20;
inline constexpr std::size_t kMaxFoldTraces =
    static_cast<std::size_t>((std::uint64_t{1} << 62) /
                             static_cast<std::uint64_t>(kMaxAbsReading *
                                                        kMaxAbsReading));

/// Throws slm::Error when `traces` exceeds the integer-accumulator
/// overflow budget. `who` names the refusing subsystem in the message.
void require_fold_budget(std::size_t traces, const char* who);

// --- Kernels ------------------------------------------------------------

/// One dispatch level's kernel table. All levels compute identical
/// accumulator bits (exact integer addition is associative); they differ
/// only in lane width.
struct FoldKernels {
  DispatchLevel level;
  /// dst[i] += src[i] for i in [0, n).
  void (*add_i64)(std::int64_t* dst, const std::int64_t* src, std::size_t n);
  /// dst_y[i] += y[i] and dst_yy[i] += yy[i] for i in [0, n) — the
  /// paired sum / sum-of-squares row update.
  void (*add2_i64)(std::int64_t* dst_y, std::int64_t* dst_yy,
                   const std::int64_t* y, const std::int64_t* yy,
                   std::size_t n);
  /// Stage a readings block for the integer fold (same contract as
  /// stage_readings_i64, which is the scalar reference). The AVX2 level
  /// converts and validates 4 lanes at a time; every level produces the
  /// same bytes or throws the same error.
  void (*stage_i64)(const double* y, std::size_t n, std::int64_t* yi,
                    std::int64_t* yyi);
  /// Column sums over a trace-major block: for s in [0, n),
  /// dst_y[s] += sum_t y[t*n + s] and dst_yy[s] += sum_t yy[t*n + s]
  /// for t in [0, count). One call replaces `count` add2_i64 calls and
  /// keeps the running sums in registers across the whole block.
  void (*sum_cols2_i64)(std::int64_t* dst_y, std::int64_t* dst_yy,
                        const std::int64_t* y, const std::int64_t* yy,
                        std::size_t count, std::size_t n);
  /// Row scatter over a trace-major block: for r in [0, rows),
  /// dst[cls[r]*n + i] += src[r*n + i] for i in [0, n). The class-row
  /// rank-K update of XorClassCpa / MultiByteCpa as one call per block.
  void (*scatter_rows_i64)(std::int64_t* dst, const std::int64_t* src,
                           const std::uint32_t* cls, std::size_t rows,
                           std::size_t n);
};

/// Best level the running CPU supports.
DispatchLevel detect_dispatch();

/// The process-wide level: SLM_SIMD if set, else detect_dispatch().
/// Resolved once on first use.
DispatchLevel active_dispatch();

/// Kernel table for an explicit level (the property test drives every
/// level through this regardless of the active one). Requesting a level
/// the CPU cannot run throws.
const FoldKernels& kernels(DispatchLevel level);

/// Kernel table for active_dispatch().
const FoldKernels& active_kernels();

/// Test hook: override active_dispatch() for the rest of the process
/// (or until cleared). Lets one test binary exercise every level
/// end-to-end without re-execing under a different SLM_SIMD.
void force_dispatch_for_testing(DispatchLevel level);
void clear_forced_dispatch_for_testing();

/// Stage one trace-major block of readings for the integer fold:
/// yi[i] = (int64) y[i] and yyi[i] = yi[i]^2. Enforces the engine
/// contract — every reading must be integer-valued with magnitude at
/// most kMaxAbsReading — and throws on the first violation, before any
/// accumulator is touched.
void stage_readings_i64(const double* y, std::size_t n, std::int64_t* yi,
                        std::int64_t* yyi);

// --- Serialization bridge ----------------------------------------------
//
// Checkpoints / snapshots keep their on-disk double fields (no format
// bump): every in-budget integer sum is far below 2^53, so the
// int64 <-> double casts are exact. Both directions verify the exact
// round trip and throw rather than silently losing a bit.

/// int64 sums -> the exact doubles the legacy engines would have held.
std::vector<double> sums_to_f64_exact(const std::vector<std::int64_t>& v,
                                      const char* who);

/// Stored doubles -> int64 sums; refuses non-integral values.
std::vector<std::int64_t> sums_from_f64_exact(const std::vector<double>& v,
                                              const char* who);

}  // namespace slm::sca
