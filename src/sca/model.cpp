#include "sca/model.hpp"

#include "common/error.hpp"

namespace slm::sca {

LastRoundBitModel::LastRoundBitModel(std::size_t guessed_key_byte,
                                     std::size_t bit)
    : g_(guessed_key_byte),
      bit_(bit),
      q_(crypto::Aes128::inv_shift_rows_pos(guessed_key_byte)) {
  SLM_REQUIRE(g_ < 16, "LastRoundBitModel: key byte out of range");
  SLM_REQUIRE(bit_ < 8, "LastRoundBitModel: bit out of range");
  for (std::size_t z = 0; z < 256; ++z) {
    pattern_[z] = static_cast<std::uint8_t>(
        (crypto::Aes128::inv_sbox(static_cast<std::uint8_t>(z)) >> bit_) & 1);
  }
}

std::uint8_t LastRoundBitModel::hypothesis(const crypto::Block& ct,
                                           std::uint8_t guess) const {
  const std::uint8_t state9 = crypto::Aes128::inv_sbox(
      static_cast<std::uint8_t>(ct[g_] ^ guess));
  const std::uint8_t flip = static_cast<std::uint8_t>(state9 ^ ct[q_]);
  return static_cast<std::uint8_t>((flip >> bit_) & 1);
}

void LastRoundBitModel::hypotheses(const crypto::Block& ct,
                                   std::vector<std::uint8_t>& out) const {
  out.resize(256);
  const std::uint8_t ct_g = ct[g_];
  const std::uint8_t b = class_bit(ct);
  // ((InvSbox(ct_g ^ k) ^ ct_q) >> bit) & 1 == pattern_[ct_g ^ k] ^ b.
  for (std::size_t k = 0; k < 256; ++k) {
    out[k] = static_cast<std::uint8_t>(pattern_[ct_g ^ k] ^ b);
  }
}

}  // namespace slm::sca
