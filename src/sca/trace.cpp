#include "sca/trace.hpp"

#include <istream>
#include <ostream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace slm::sca {

void TraceSet::add(std::vector<double> samples, const crypto::Block& plaintext,
                   const crypto::Block& ciphertext) {
  if (samples_per_trace_ == 0 && traces_.empty()) {
    samples_per_trace_ = samples.size();
  }
  SLM_REQUIRE(samples.size() == samples_per_trace_,
              "TraceSet::add: sample count mismatch");
  traces_.push_back(std::move(samples));
  plaintexts_.push_back(plaintext);
  ciphertexts_.push_back(ciphertext);
}

const std::vector<double>& TraceSet::trace(std::size_t i) const {
  SLM_REQUIRE(i < traces_.size(), "TraceSet::trace: out of range");
  return traces_[i];
}

const crypto::Block& TraceSet::plaintext(std::size_t i) const {
  SLM_REQUIRE(i < plaintexts_.size(), "TraceSet::plaintext: out of range");
  return plaintexts_[i];
}

const crypto::Block& TraceSet::ciphertext(std::size_t i) const {
  SLM_REQUIRE(i < ciphertexts_.size(), "TraceSet::ciphertext: out of range");
  return ciphertexts_[i];
}

std::vector<double> TraceSet::sample_variances() const {
  std::vector<OnlineMeanVar> acc(samples_per_trace_);
  for (const auto& t : traces_) {
    for (std::size_t s = 0; s < samples_per_trace_; ++s) acc[s].add(t[s]);
  }
  std::vector<double> out(samples_per_trace_);
  for (std::size_t s = 0; s < samples_per_trace_; ++s) {
    out[s] = acc[s].variance();
  }
  return out;
}

void TraceSet::save_csv(std::ostream& os) const {
  CsvWriter w(os);
  std::vector<std::string> header{"plaintext", "ciphertext"};
  for (std::size_t s = 0; s < samples_per_trace_; ++s) {
    header.push_back("s" + std::to_string(s));
  }
  w.write_header(header);
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    std::vector<std::string> row{crypto::block_to_hex(plaintexts_[i]),
                                 crypto::block_to_hex(ciphertexts_[i])};
    for (double v : traces_[i]) row.push_back(format_double(v, 6));
    w.write_row(row);
  }
}

TraceSet TraceSet::load_csv(std::istream& is) {
  TraceSet set;
  std::string line;
  bool header = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (header) {
      header = false;
      continue;
    }
    const auto cells = split_csv_line(line);
    SLM_REQUIRE(cells.size() >= 3, "TraceSet::load_csv: short row");
    std::vector<double> samples;
    samples.reserve(cells.size() - 2);
    for (std::size_t i = 2; i < cells.size(); ++i) {
      samples.push_back(std::stod(cells[i]));
    }
    set.add(std::move(samples), crypto::block_from_hex(cells[0]),
            crypto::block_from_hex(cells[1]));
  }
  return set;
}

}  // namespace slm::sca
