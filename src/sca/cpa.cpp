#include "sca/cpa.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "sca/fold_kernels.hpp"

namespace slm::sca {
namespace {

// Per-thread staging scratch for the double -> int64 conversion: the
// readings and their squares are materialized once per block, so the
// dispatched hot loops are pure integer adds (no multiply — AVX2 has no
// 64x64 product).
struct StagedBlock {
  const std::int64_t* y;
  const std::int64_t* yy;
};

StagedBlock stage_block(const FoldKernels& k, const double* y,
                        std::size_t n) {
  thread_local std::vector<std::int64_t> yi;
  thread_local std::vector<std::int64_t> yyi;
  if (yi.size() < n) {
    yi.resize(n);
    yyi.resize(n);
  }
  k.stage_i64(y, n, yi.data(), yyi.data());
  return {yi.data(), yyi.data()};
}

}  // namespace

CpaEngine::CpaEngine(std::size_t guess_count, std::size_t sample_count)
    : guesses_(guess_count),
      samples_(sample_count),
      sum_y_(sample_count, 0),
      sum_yy_(sample_count, 0),
      sum_h_(guess_count, 0),
      sum_hy_(guess_count * sample_count, 0) {
  SLM_REQUIRE(guess_count > 0 && sample_count > 0,
              "CpaEngine: empty dimensions");
}

void CpaEngine::add_trace(const std::vector<std::uint8_t>& h,
                          const std::vector<double>& y) {
  SLM_REQUIRE(h.size() == guesses_, "CpaEngine: hypothesis count mismatch");
  SLM_REQUIRE(y.size() == samples_, "CpaEngine: sample count mismatch");
  require_fold_budget(n_ + 1, "CpaEngine");
  const FoldKernels& k = active_kernels();
  const StagedBlock st = stage_block(k, y.data(), samples_);
  ++n_;
  k.add2_i64(sum_y_.data(), sum_yy_.data(), st.y, st.yy, samples_);
  for (std::size_t g = 0; g < guesses_; ++g) {
    if (h[g]) {
      sum_h_[g] += 1;
      k.add_i64(&sum_hy_[g * samples_], st.y, samples_);
    }
  }
}

void CpaEngine::add_traces(const std::uint8_t* h, const double* y,
                           std::size_t count) {
  require_fold_budget(n_ + count, "CpaEngine");
  const FoldKernels& k = active_kernels();
  const StagedBlock st = stage_block(k, y, count * samples_);
  n_ += count;
  k.sum_cols2_i64(sum_y_.data(), sum_yy_.data(), st.y, st.yy, count,
                  samples_);
  // Guess-major rank-K update: row g stays hot while the block's
  // contributing traces are applied — ~samples_ int64s of working set.
  for (std::size_t g = 0; g < guesses_; ++g) {
    std::int64_t* row = &sum_hy_[g * samples_];
    for (std::size_t t = 0; t < count; ++t) {
      if (h[t * guesses_ + g]) {
        sum_h_[g] += 1;
        k.add_i64(row, st.y + t * samples_, samples_);
      }
    }
  }
}

void CpaEngine::merge(const CpaEngine& other) {
  SLM_REQUIRE(other.guesses_ == guesses_ && other.samples_ == samples_,
              "CpaEngine::merge: dimension mismatch");
  require_fold_budget(n_ + other.n_, "CpaEngine::merge");
  const FoldKernels& k = active_kernels();
  n_ += other.n_;
  k.add2_i64(sum_y_.data(), sum_yy_.data(), other.sum_y_.data(),
             other.sum_yy_.data(), samples_);
  k.add_i64(sum_h_.data(), other.sum_h_.data(), guesses_);
  k.add_i64(sum_hy_.data(), other.sum_hy_.data(), sum_hy_.size());
}

double CpaEngine::correlation(std::size_t guess, std::size_t sample) const {
  SLM_REQUIRE(guess < guesses_ && sample < samples_,
              "CpaEngine::correlation: index out of range");
  if (n_ < 2) return 0.0;
  // Read-out happens in double on the exact integer sums — every cast is
  // exact below 2^53 (overflow budget), and the expression is verbatim
  // the legacy all-double engine's, so the result is bit-identical to
  // every artifact that engine produced.
  const double n = static_cast<double>(n_);
  const double sh = static_cast<double>(sum_h_[guess]);
  const double sy = static_cast<double>(sum_y_[sample]);
  const double cov =
      n * static_cast<double>(sum_hy_[guess * samples_ + sample]) - sh * sy;
  const double var_h = n * sh - sh * sh;  // h is binary: sum_hh == sum_h
  const double var_y = n * static_cast<double>(sum_yy_[sample]) - sy * sy;
  const double denom = std::sqrt(var_h * var_y);
  return denom > 0.0 ? cov / denom : 0.0;
}

std::vector<double> CpaEngine::max_abs_correlation() const {
  std::vector<double> out(guesses_, 0.0);
  for (std::size_t k = 0; k < guesses_; ++k) {
    double best = 0.0;
    for (std::size_t s = 0; s < samples_; ++s) {
      const double r = std::abs(correlation(k, s));
      if (r > best) best = r;
    }
    out[k] = best;
  }
  return out;
}

std::size_t CpaEngine::best_guess() const {
  return argmax(max_abs_correlation());
}

std::size_t CpaEngine::rank_of(std::size_t guess) const {
  SLM_REQUIRE(guess < guesses_, "CpaEngine::rank_of: out of range");
  const auto corr = max_abs_correlation();
  std::size_t rank = 0;
  for (std::size_t k = 0; k < guesses_; ++k) {
    if (k != guess && corr[k] > corr[guess]) ++rank;
  }
  return rank;
}

void CpaEngine::save(ByteWriter& out) const {
  out.put_u64(guesses_);
  out.put_u64(samples_);
  out.put_u64(n_);
  out.put_f64_vector(sums_to_f64_exact(sum_y_, "CpaEngine::save"));
  out.put_f64_vector(sums_to_f64_exact(sum_yy_, "CpaEngine::save"));
  out.put_f64_vector(sums_to_f64_exact(sum_h_, "CpaEngine::save"));
  out.put_f64_vector(sums_to_f64_exact(sum_hy_, "CpaEngine::save"));
}

void CpaEngine::load(ByteReader& in) {
  const std::uint64_t guesses = in.get_u64();
  const std::uint64_t samples = in.get_u64();
  SLM_REQUIRE(guesses == guesses_ && samples == samples_,
              "CpaEngine::load: dimension mismatch");
  n_ = in.get_u64();
  sum_y_ = sums_from_f64_exact(in.get_f64_vector(), "CpaEngine::load");
  sum_yy_ = sums_from_f64_exact(in.get_f64_vector(), "CpaEngine::load");
  sum_h_ = sums_from_f64_exact(in.get_f64_vector(), "CpaEngine::load");
  sum_hy_ = sums_from_f64_exact(in.get_f64_vector(), "CpaEngine::load");
  SLM_REQUIRE(sum_y_.size() == samples_ && sum_yy_.size() == samples_ &&
                  sum_h_.size() == guesses_ &&
                  sum_hy_.size() == guesses_ * samples_,
              "CpaEngine::load: corrupt payload");
}

XorClassCpa::XorClassCpa(std::size_t sample_count)
    : samples_(sample_count),
      sum_y_(sample_count, 0),
      sum_yy_(sample_count, 0),
      class_n_(kClasses, 0),
      class_y_(kClasses * sample_count, 0) {
  SLM_REQUIRE(sample_count > 0, "XorClassCpa: empty sample dimension");
}

void XorClassCpa::add_trace(std::uint8_t v, std::uint8_t b,
                            const std::vector<double>& y) {
  SLM_REQUIRE(y.size() == samples_, "XorClassCpa: sample count mismatch");
  SLM_REQUIRE(b <= 1, "XorClassCpa: class bit must be 0/1");
  require_fold_budget(n_ + 1, "XorClassCpa");
  const FoldKernels& k = active_kernels();
  const StagedBlock st = stage_block(k, y.data(), samples_);
  ++n_;
  const std::size_t cls = (static_cast<std::size_t>(v) << 1) | b;
  class_n_[cls] += 1;
  k.add2_i64(sum_y_.data(), sum_yy_.data(), st.y, st.yy, samples_);
  k.add_i64(&class_y_[cls * samples_], st.y, samples_);
}

void XorClassCpa::add_block(const std::uint8_t* v, const std::uint8_t* b,
                            const double* y, std::size_t count) {
  // Budget and class bits before any accumulator mutation: an
  // over-budget count is refused without touching the (possibly
  // smaller) input arrays, and a bad class bit leaves the sums intact.
  require_fold_budget(n_ + count, "XorClassCpa");
  thread_local std::vector<std::uint32_t> cls_idx;
  cls_idx.resize(count);
  for (std::size_t t = 0; t < count; ++t) {
    SLM_REQUIRE(b[t] <= 1, "XorClassCpa: class bit must be 0/1");
    cls_idx[t] =
        static_cast<std::uint32_t>((static_cast<std::size_t>(v[t]) << 1) |
                                   b[t]);
  }
  const FoldKernels& k = active_kernels();
  const StagedBlock st = stage_block(k, y, count * samples_);
  n_ += count;
  // Column sums once per block (the running sums stay in registers
  // across all `count` traces), then one scatter call for the class
  // rank-K update — exact integer addition makes any per-trace scatter
  // order produce the same accumulator bits, so no bucketing is needed.
  k.sum_cols2_i64(sum_y_.data(), sum_yy_.data(), st.y, st.yy, count,
                  samples_);
  for (std::size_t t = 0; t < count; ++t) class_n_[cls_idx[t]] += 1;
  k.scatter_rows_i64(class_y_.data(), st.y, cls_idx.data(), count, samples_);
}

void XorClassCpa::merge(const XorClassCpa& other) {
  SLM_REQUIRE(other.samples_ == samples_, "XorClassCpa::merge: mismatch");
  require_fold_budget(n_ + other.n_, "XorClassCpa::merge");
  const FoldKernels& k = active_kernels();
  n_ += other.n_;
  k.add2_i64(sum_y_.data(), sum_yy_.data(), other.sum_y_.data(),
             other.sum_yy_.data(), samples_);
  k.add_i64(class_n_.data(), other.class_n_.data(), kClasses);
  k.add_i64(class_y_.data(), other.class_y_.data(), class_y_.size());
}

CpaEngine XorClassCpa::fold(const std::uint8_t* pattern256) const {
  const FoldKernels& kn = active_kernels();
  CpaEngine e(256, samples_);
  e.n_ = n_;
  e.sum_y_ = sum_y_;
  e.sum_yy_ = sum_yy_;
  for (std::size_t k = 0; k < 256; ++k) {
    std::int64_t sh = 0;
    std::int64_t* row = &e.sum_hy_[k * samples_];
    for (std::size_t v = 0; v < 256; ++v) {
      // h = pattern[v ^ k] ^ b: only the b that makes h == 1 contributes.
      const std::size_t b = pattern256[v ^ k] ? 0u : 1u;
      const std::size_t cls = (v << 1) | b;
      if (class_n_[cls] == 0) continue;
      sh += class_n_[cls];
      kn.add_i64(row, &class_y_[cls * samples_], samples_);
    }
    e.sum_h_[k] = sh;
  }
  return e;
}

void XorClassCpa::save(ByteWriter& out) const {
  out.put_u64(samples_);
  out.put_u64(n_);
  out.put_f64_vector(sums_to_f64_exact(sum_y_, "XorClassCpa::save"));
  out.put_f64_vector(sums_to_f64_exact(sum_yy_, "XorClassCpa::save"));
  out.put_f64_vector(sums_to_f64_exact(class_n_, "XorClassCpa::save"));
  out.put_f64_vector(sums_to_f64_exact(class_y_, "XorClassCpa::save"));
}

void XorClassCpa::load(ByteReader& in) {
  const std::uint64_t samples = in.get_u64();
  SLM_REQUIRE(samples == samples_, "XorClassCpa::load: dimension mismatch");
  n_ = in.get_u64();
  sum_y_ = sums_from_f64_exact(in.get_f64_vector(), "XorClassCpa::load");
  sum_yy_ = sums_from_f64_exact(in.get_f64_vector(), "XorClassCpa::load");
  class_n_ = sums_from_f64_exact(in.get_f64_vector(), "XorClassCpa::load");
  class_y_ = sums_from_f64_exact(in.get_f64_vector(), "XorClassCpa::load");
  SLM_REQUIRE(sum_y_.size() == samples_ && sum_yy_.size() == samples_ &&
                  class_n_.size() == kClasses &&
                  class_y_.size() == kClasses * samples_,
              "XorClassCpa::load: corrupt payload");
}

MultiByteCpa::MultiByteCpa(std::size_t sample_count)
    : samples_(sample_count),
      sum_y_(sample_count, 0),
      sum_yy_(sample_count, 0),
      class_n_(kBytes * kClasses, 0),
      class_y_(kBytes * kClasses * sample_count, 0) {
  SLM_REQUIRE(sample_count > 0, "MultiByteCpa: empty sample dimension");
}

void MultiByteCpa::add_trace(const std::uint8_t* v16, const std::uint8_t* b16,
                             const std::vector<double>& y) {
  SLM_REQUIRE(y.size() == samples_, "MultiByteCpa: sample count mismatch");
  for (std::size_t j = 0; j < kBytes; ++j) {
    SLM_REQUIRE(b16[j] <= 1, "MultiByteCpa: class bit must be 0/1");
  }
  require_fold_budget(n_ + 1, "MultiByteCpa");
  const FoldKernels& k = active_kernels();
  const StagedBlock st = stage_block(k, y.data(), samples_);
  ++n_;
  k.add2_i64(sum_y_.data(), sum_yy_.data(), st.y, st.yy, samples_);
  for (std::size_t j = 0; j < kBytes; ++j) {
    const std::size_t cls = (static_cast<std::size_t>(v16[j]) << 1) | b16[j];
    class_n_[j * kClasses + cls] += 1;
    k.add_i64(&class_y_[(j * kClasses + cls) * samples_], st.y, samples_);
  }
}

void MultiByteCpa::add_block(const std::uint8_t* v, const std::uint8_t* b,
                             const double* y, std::size_t count) {
  require_fold_budget(n_ + count, "MultiByteCpa");
  // Class indices for all 16 bytes up front, byte-major — the pass
  // doubles as the class-bit validation, completed before any
  // accumulator is touched.
  thread_local std::vector<std::uint32_t> cls_idx;
  cls_idx.resize(kBytes * count);
  for (std::size_t t = 0; t < count; ++t) {
    for (std::size_t j = 0; j < kBytes; ++j) {
      SLM_REQUIRE(b[t * kBytes + j] <= 1,
                  "MultiByteCpa: class bit must be 0/1");
      cls_idx[j * count + t] = static_cast<std::uint32_t>(
          (static_cast<std::size_t>(v[t * kBytes + j]) << 1) |
          b[t * kBytes + j]);
    }
  }
  const FoldKernels& k = active_kernels();
  const StagedBlock st = stage_block(k, y, count * samples_);
  n_ += count;
  k.sum_cols2_i64(sum_y_.data(), sum_yy_.data(), st.y, st.yy, count,
                  samples_);
  // Per byte, one scatter call over that byte's 512 x S class tile —
  // the tile stays cache-resident for the whole block, and exact
  // integer addition makes the scatter order irrelevant to the bits.
  for (std::size_t j = 0; j < kBytes; ++j) {
    const std::uint32_t* cj = &cls_idx[j * count];
    std::int64_t* cn = &class_n_[j * kClasses];
    for (std::size_t t = 0; t < count; ++t) cn[cj[t]] += 1;
    k.scatter_rows_i64(&class_y_[j * kClasses * samples_], st.y, cj, count,
                       samples_);
  }
}

void MultiByteCpa::merge(const MultiByteCpa& other) {
  SLM_REQUIRE(other.samples_ == samples_, "MultiByteCpa::merge: mismatch");
  require_fold_budget(n_ + other.n_, "MultiByteCpa::merge");
  const FoldKernels& k = active_kernels();
  n_ += other.n_;
  k.add2_i64(sum_y_.data(), sum_yy_.data(), other.sum_y_.data(),
             other.sum_yy_.data(), samples_);
  k.add_i64(class_n_.data(), other.class_n_.data(), class_n_.size());
  k.add_i64(class_y_.data(), other.class_y_.data(), class_y_.size());
}

CpaEngine MultiByteCpa::fold(std::size_t byte,
                             const std::uint8_t* pattern256) const {
  SLM_REQUIRE(byte < kBytes, "MultiByteCpa::fold: byte out of range");
  const FoldKernels& kn = active_kernels();
  CpaEngine e(256, samples_);
  e.n_ = n_;
  e.sum_y_ = sum_y_;
  e.sum_yy_ = sum_yy_;
  const std::int64_t* cn = &class_n_[byte * kClasses];
  const std::int64_t* cy = &class_y_[byte * kClasses * samples_];
  for (std::size_t k = 0; k < 256; ++k) {
    std::int64_t sh = 0;
    std::int64_t* row = &e.sum_hy_[k * samples_];
    for (std::size_t v = 0; v < 256; ++v) {
      // h = pattern[v ^ k] ^ b: only the b that makes h == 1 contributes.
      const std::size_t b = pattern256[v ^ k] ? 0u : 1u;
      const std::size_t cls = (v << 1) | b;
      if (cn[cls] == 0) continue;
      sh += cn[cls];
      kn.add_i64(row, cy + cls * samples_, samples_);
    }
    e.sum_h_[k] = sh;
  }
  return e;
}

void MultiByteCpa::save(ByteWriter& out) const {
  out.put_u64(samples_);
  out.put_u64(n_);
  out.put_f64_vector(sums_to_f64_exact(sum_y_, "MultiByteCpa::save"));
  out.put_f64_vector(sums_to_f64_exact(sum_yy_, "MultiByteCpa::save"));
  out.put_f64_vector(sums_to_f64_exact(class_n_, "MultiByteCpa::save"));
  out.put_f64_vector(sums_to_f64_exact(class_y_, "MultiByteCpa::save"));
}

void MultiByteCpa::load(ByteReader& in) {
  const std::uint64_t samples = in.get_u64();
  SLM_REQUIRE(samples == samples_, "MultiByteCpa::load: dimension mismatch");
  n_ = in.get_u64();
  sum_y_ = sums_from_f64_exact(in.get_f64_vector(), "MultiByteCpa::load");
  sum_yy_ = sums_from_f64_exact(in.get_f64_vector(), "MultiByteCpa::load");
  class_n_ = sums_from_f64_exact(in.get_f64_vector(), "MultiByteCpa::load");
  class_y_ = sums_from_f64_exact(in.get_f64_vector(), "MultiByteCpa::load");
  SLM_REQUIRE(sum_y_.size() == samples_ && sum_yy_.size() == samples_ &&
                  class_n_.size() == kBytes * kClasses &&
                  class_y_.size() == kBytes * kClasses * samples_,
              "MultiByteCpa::load: corrupt payload");
}

CpaProgressPoint snapshot_progress(const CpaEngine& engine,
                                   std::size_t correct_guess) {
  CpaProgressPoint p;
  p.traces = engine.trace_count();
  p.max_abs_corr = engine.max_abs_correlation();
  p.best_guess = argmax(p.max_abs_corr);
  p.correct_corr = p.max_abs_corr[correct_guess];
  std::size_t rank = 0;
  double best_wrong = 0.0;
  for (std::size_t k = 0; k < p.max_abs_corr.size(); ++k) {
    if (k == correct_guess) continue;
    if (p.max_abs_corr[k] > p.correct_corr) ++rank;
    if (p.max_abs_corr[k] > best_wrong) best_wrong = p.max_abs_corr[k];
  }
  p.correct_rank = rank;
  p.best_wrong_corr = best_wrong;
  return p;
}

}  // namespace slm::sca
