#include "sca/cpa.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace slm::sca {

CpaEngine::CpaEngine(std::size_t guess_count, std::size_t sample_count)
    : guesses_(guess_count),
      samples_(sample_count),
      sum_y_(sample_count, 0.0),
      sum_yy_(sample_count, 0.0),
      sum_h_(guess_count, 0.0),
      sum_hy_(guess_count * sample_count, 0.0) {
  SLM_REQUIRE(guess_count > 0 && sample_count > 0,
              "CpaEngine: empty dimensions");
}

void CpaEngine::add_trace(const std::vector<std::uint8_t>& h,
                          const std::vector<double>& y) {
  SLM_REQUIRE(h.size() == guesses_, "CpaEngine: hypothesis count mismatch");
  SLM_REQUIRE(y.size() == samples_, "CpaEngine: sample count mismatch");
  ++n_;
  for (std::size_t s = 0; s < samples_; ++s) {
    sum_y_[s] += y[s];
    sum_yy_[s] += y[s] * y[s];
  }
  for (std::size_t k = 0; k < guesses_; ++k) {
    if (h[k]) {
      sum_h_[k] += 1.0;
      double* row = &sum_hy_[k * samples_];
      for (std::size_t s = 0; s < samples_; ++s) row[s] += y[s];
    }
  }
}

void CpaEngine::add_traces(const std::uint8_t* h, const double* y,
                           std::size_t count) {
  n_ += count;
  // Trace-major per-sample sums: each sum_y_/sum_yy_ slot accumulates in
  // block order, exactly as repeated add_trace calls would.
  for (std::size_t t = 0; t < count; ++t) {
    const double* yt = y + t * samples_;
    for (std::size_t s = 0; s < samples_; ++s) {
      sum_y_[s] += yt[s];
      sum_yy_[s] += yt[s] * yt[s];
    }
  }
  // Guess-major rank-K update: row k stays hot while the block's
  // contributing traces are applied in order — same per-slot addition
  // sequence as the per-trace scatter, ~samples_ doubles of working set.
  for (std::size_t k = 0; k < guesses_; ++k) {
    double* row = &sum_hy_[k * samples_];
    for (std::size_t t = 0; t < count; ++t) {
      if (h[t * guesses_ + k]) {
        sum_h_[k] += 1.0;
        const double* yt = y + t * samples_;
        for (std::size_t s = 0; s < samples_; ++s) row[s] += yt[s];
      }
    }
  }
}

void CpaEngine::merge(const CpaEngine& other) {
  SLM_REQUIRE(other.guesses_ == guesses_ && other.samples_ == samples_,
              "CpaEngine::merge: dimension mismatch");
  n_ += other.n_;
  for (std::size_t s = 0; s < samples_; ++s) {
    sum_y_[s] += other.sum_y_[s];
    sum_yy_[s] += other.sum_yy_[s];
  }
  for (std::size_t k = 0; k < guesses_; ++k) sum_h_[k] += other.sum_h_[k];
  for (std::size_t i = 0; i < sum_hy_.size(); ++i) {
    sum_hy_[i] += other.sum_hy_[i];
  }
}

double CpaEngine::correlation(std::size_t guess, std::size_t sample) const {
  SLM_REQUIRE(guess < guesses_ && sample < samples_,
              "CpaEngine::correlation: index out of range");
  if (n_ < 2) return 0.0;
  const double n = static_cast<double>(n_);
  const double sh = sum_h_[guess];
  const double sy = sum_y_[sample];
  const double cov = n * sum_hy_[guess * samples_ + sample] - sh * sy;
  const double var_h = n * sh - sh * sh;  // h is binary: sum_hh == sum_h
  const double var_y = n * sum_yy_[sample] - sy * sy;
  const double denom = std::sqrt(var_h * var_y);
  return denom > 0.0 ? cov / denom : 0.0;
}

std::vector<double> CpaEngine::max_abs_correlation() const {
  std::vector<double> out(guesses_, 0.0);
  for (std::size_t k = 0; k < guesses_; ++k) {
    double best = 0.0;
    for (std::size_t s = 0; s < samples_; ++s) {
      const double r = std::abs(correlation(k, s));
      if (r > best) best = r;
    }
    out[k] = best;
  }
  return out;
}

std::size_t CpaEngine::best_guess() const {
  return argmax(max_abs_correlation());
}

std::size_t CpaEngine::rank_of(std::size_t guess) const {
  SLM_REQUIRE(guess < guesses_, "CpaEngine::rank_of: out of range");
  const auto corr = max_abs_correlation();
  std::size_t rank = 0;
  for (std::size_t k = 0; k < guesses_; ++k) {
    if (k != guess && corr[k] > corr[guess]) ++rank;
  }
  return rank;
}

void CpaEngine::save(ByteWriter& out) const {
  out.put_u64(guesses_);
  out.put_u64(samples_);
  out.put_u64(n_);
  out.put_f64_vector(sum_y_);
  out.put_f64_vector(sum_yy_);
  out.put_f64_vector(sum_h_);
  out.put_f64_vector(sum_hy_);
}

void CpaEngine::load(ByteReader& in) {
  const std::uint64_t guesses = in.get_u64();
  const std::uint64_t samples = in.get_u64();
  SLM_REQUIRE(guesses == guesses_ && samples == samples_,
              "CpaEngine::load: dimension mismatch");
  n_ = in.get_u64();
  sum_y_ = in.get_f64_vector();
  sum_yy_ = in.get_f64_vector();
  sum_h_ = in.get_f64_vector();
  sum_hy_ = in.get_f64_vector();
  SLM_REQUIRE(sum_y_.size() == samples_ && sum_yy_.size() == samples_ &&
                  sum_h_.size() == guesses_ &&
                  sum_hy_.size() == guesses_ * samples_,
              "CpaEngine::load: corrupt payload");
}

XorClassCpa::XorClassCpa(std::size_t sample_count)
    : samples_(sample_count),
      sum_y_(sample_count, 0.0),
      sum_yy_(sample_count, 0.0),
      class_n_(kClasses, 0.0),
      class_y_(kClasses * sample_count, 0.0) {
  SLM_REQUIRE(sample_count > 0, "XorClassCpa: empty sample dimension");
}

void XorClassCpa::add_trace(std::uint8_t v, std::uint8_t b,
                            const std::vector<double>& y) {
  SLM_REQUIRE(y.size() == samples_, "XorClassCpa: sample count mismatch");
  SLM_REQUIRE(b <= 1, "XorClassCpa: class bit must be 0/1");
  ++n_;
  const std::size_t cls = (static_cast<std::size_t>(v) << 1) | b;
  class_n_[cls] += 1.0;
  double* row = &class_y_[cls * samples_];
  for (std::size_t s = 0; s < samples_; ++s) {
    const double ys = y[s];
    sum_y_[s] += ys;
    sum_yy_[s] += ys * ys;
    row[s] += ys;
  }
}

void XorClassCpa::add_block(const std::uint8_t* v, const std::uint8_t* b,
                            const double* y, std::size_t count) {
  for (std::size_t t = 0; t < count; ++t) {
    SLM_REQUIRE(b[t] <= 1, "XorClassCpa: class bit must be 0/1");
  }
  n_ += count;
  for (std::size_t t = 0; t < count; ++t) {
    const double* yt = y + t * samples_;
    for (std::size_t s = 0; s < samples_; ++s) {
      const double ys = yt[s];
      sum_y_[s] += ys;
      sum_yy_[s] += ys * ys;
    }
  }
  // Stable counting sort of the block's traces by class: head_/next_
  // style chains would do, but for <= a few hundred traces two passes
  // over a 512-entry histogram are cheaper and keep block order within
  // each class — the property bit-exactness needs per-row addition order
  // to match the per-trace scatter.
  thread_local std::vector<std::uint32_t> head;
  thread_local std::vector<std::uint32_t> order;
  head.assign(kClasses + 1, 0);
  order.resize(count);
  for (std::size_t t = 0; t < count; ++t) {
    const std::size_t cls = (static_cast<std::size_t>(v[t]) << 1) | b[t];
    ++head[cls + 1];
  }
  for (std::size_t c = 0; c < kClasses; ++c) head[c + 1] += head[c];
  thread_local std::vector<std::uint32_t> cursor;
  cursor.assign(head.begin(), head.end() - 1);
  for (std::size_t t = 0; t < count; ++t) {
    const std::size_t cls = (static_cast<std::size_t>(v[t]) << 1) | b[t];
    order[cursor[cls]++] = static_cast<std::uint32_t>(t);
  }
  for (std::size_t cls = 0; cls < kClasses; ++cls) {
    const std::uint32_t lo = head[cls];
    const std::uint32_t hi = head[cls + 1];
    if (lo == hi) continue;
    class_n_[cls] += static_cast<double>(hi - lo);
    double* row = &class_y_[cls * samples_];
    for (std::uint32_t i = lo; i < hi; ++i) {
      const double* yt = y + static_cast<std::size_t>(order[i]) * samples_;
      for (std::size_t s = 0; s < samples_; ++s) row[s] += yt[s];
    }
  }
}

void XorClassCpa::merge(const XorClassCpa& other) {
  SLM_REQUIRE(other.samples_ == samples_, "XorClassCpa::merge: mismatch");
  n_ += other.n_;
  for (std::size_t s = 0; s < samples_; ++s) {
    sum_y_[s] += other.sum_y_[s];
    sum_yy_[s] += other.sum_yy_[s];
  }
  for (std::size_t c = 0; c < kClasses; ++c) class_n_[c] += other.class_n_[c];
  for (std::size_t i = 0; i < class_y_.size(); ++i) {
    class_y_[i] += other.class_y_[i];
  }
}

CpaEngine XorClassCpa::fold(const std::uint8_t* pattern256) const {
  CpaEngine e(256, samples_);
  e.n_ = n_;
  e.sum_y_ = sum_y_;
  e.sum_yy_ = sum_yy_;
  for (std::size_t k = 0; k < 256; ++k) {
    double sh = 0.0;
    double* row = &e.sum_hy_[k * samples_];
    for (std::size_t v = 0; v < 256; ++v) {
      // h = pattern[v ^ k] ^ b: only the b that makes h == 1 contributes.
      const std::size_t b = pattern256[v ^ k] ? 0u : 1u;
      const std::size_t cls = (v << 1) | b;
      if (class_n_[cls] == 0.0) continue;
      sh += class_n_[cls];
      const double* src = &class_y_[cls * samples_];
      for (std::size_t s = 0; s < samples_; ++s) row[s] += src[s];
    }
    e.sum_h_[k] = sh;
  }
  return e;
}

void XorClassCpa::save(ByteWriter& out) const {
  out.put_u64(samples_);
  out.put_u64(n_);
  out.put_f64_vector(sum_y_);
  out.put_f64_vector(sum_yy_);
  out.put_f64_vector(class_n_);
  out.put_f64_vector(class_y_);
}

void XorClassCpa::load(ByteReader& in) {
  const std::uint64_t samples = in.get_u64();
  SLM_REQUIRE(samples == samples_, "XorClassCpa::load: dimension mismatch");
  n_ = in.get_u64();
  sum_y_ = in.get_f64_vector();
  sum_yy_ = in.get_f64_vector();
  class_n_ = in.get_f64_vector();
  class_y_ = in.get_f64_vector();
  SLM_REQUIRE(sum_y_.size() == samples_ && sum_yy_.size() == samples_ &&
                  class_n_.size() == kClasses &&
                  class_y_.size() == kClasses * samples_,
              "XorClassCpa::load: corrupt payload");
}

MultiByteCpa::MultiByteCpa(std::size_t sample_count)
    : samples_(sample_count),
      sum_y_(sample_count, 0.0),
      sum_yy_(sample_count, 0.0),
      class_n_(kBytes * kClasses, 0.0),
      class_y_(kBytes * kClasses * sample_count, 0.0) {
  SLM_REQUIRE(sample_count > 0, "MultiByteCpa: empty sample dimension");
}

void MultiByteCpa::add_trace(const std::uint8_t* v16, const std::uint8_t* b16,
                             const std::vector<double>& y) {
  SLM_REQUIRE(y.size() == samples_, "MultiByteCpa: sample count mismatch");
  for (std::size_t j = 0; j < kBytes; ++j) {
    SLM_REQUIRE(b16[j] <= 1, "MultiByteCpa: class bit must be 0/1");
  }
  ++n_;
  for (std::size_t s = 0; s < samples_; ++s) {
    const double ys = y[s];
    sum_y_[s] += ys;
    sum_yy_[s] += ys * ys;
  }
  for (std::size_t j = 0; j < kBytes; ++j) {
    const std::size_t cls = (static_cast<std::size_t>(v16[j]) << 1) | b16[j];
    class_n_[j * kClasses + cls] += 1.0;
    double* row = &class_y_[(j * kClasses + cls) * samples_];
    for (std::size_t s = 0; s < samples_; ++s) row[s] += y[s];
  }
}

void MultiByteCpa::add_block(const std::uint8_t* v, const std::uint8_t* b,
                             const double* y, std::size_t count) {
  for (std::size_t i = 0; i < count * kBytes; ++i) {
    SLM_REQUIRE(b[i] <= 1, "MultiByteCpa: class bit must be 0/1");
  }
  n_ += count;
  for (std::size_t t = 0; t < count; ++t) {
    const double* yt = y + t * samples_;
    for (std::size_t s = 0; s < samples_; ++s) {
      const double ys = yt[s];
      sum_y_[s] += ys;
      sum_yy_[s] += ys * ys;
    }
  }
  // Per byte, the same stable counting sort XorClassCpa::add_block runs:
  // bucket the block's traces by that byte's class, then update each
  // touched class row once with its traces in block order. Every byte
  // slice therefore sees the per-trace addition sequence exactly, while
  // each 512 x S tile stays cache-resident for the whole block.
  thread_local std::vector<std::uint32_t> head;
  thread_local std::vector<std::uint32_t> order;
  thread_local std::vector<std::uint32_t> cursor;
  for (std::size_t j = 0; j < kBytes; ++j) {
    head.assign(kClasses + 1, 0);
    order.resize(count);
    for (std::size_t t = 0; t < count; ++t) {
      const std::size_t cls =
          (static_cast<std::size_t>(v[t * kBytes + j]) << 1) | b[t * kBytes + j];
      ++head[cls + 1];
    }
    for (std::size_t c = 0; c < kClasses; ++c) head[c + 1] += head[c];
    cursor.assign(head.begin(), head.end() - 1);
    for (std::size_t t = 0; t < count; ++t) {
      const std::size_t cls =
          (static_cast<std::size_t>(v[t * kBytes + j]) << 1) | b[t * kBytes + j];
      order[cursor[cls]++] = static_cast<std::uint32_t>(t);
    }
    double* cn = &class_n_[j * kClasses];
    double* cy = &class_y_[j * kClasses * samples_];
    for (std::size_t cls = 0; cls < kClasses; ++cls) {
      const std::uint32_t lo = head[cls];
      const std::uint32_t hi = head[cls + 1];
      if (lo == hi) continue;
      cn[cls] += static_cast<double>(hi - lo);
      double* row = cy + cls * samples_;
      for (std::uint32_t i = lo; i < hi; ++i) {
        const double* yt = y + static_cast<std::size_t>(order[i]) * samples_;
        for (std::size_t s = 0; s < samples_; ++s) row[s] += yt[s];
      }
    }
  }
}

void MultiByteCpa::merge(const MultiByteCpa& other) {
  SLM_REQUIRE(other.samples_ == samples_, "MultiByteCpa::merge: mismatch");
  n_ += other.n_;
  for (std::size_t s = 0; s < samples_; ++s) {
    sum_y_[s] += other.sum_y_[s];
    sum_yy_[s] += other.sum_yy_[s];
  }
  for (std::size_t c = 0; c < class_n_.size(); ++c) {
    class_n_[c] += other.class_n_[c];
  }
  for (std::size_t i = 0; i < class_y_.size(); ++i) {
    class_y_[i] += other.class_y_[i];
  }
}

CpaEngine MultiByteCpa::fold(std::size_t byte,
                             const std::uint8_t* pattern256) const {
  SLM_REQUIRE(byte < kBytes, "MultiByteCpa::fold: byte out of range");
  CpaEngine e(256, samples_);
  e.n_ = n_;
  e.sum_y_ = sum_y_;
  e.sum_yy_ = sum_yy_;
  const double* cn = &class_n_[byte * kClasses];
  const double* cy = &class_y_[byte * kClasses * samples_];
  for (std::size_t k = 0; k < 256; ++k) {
    double sh = 0.0;
    double* row = &e.sum_hy_[k * samples_];
    for (std::size_t v = 0; v < 256; ++v) {
      // h = pattern[v ^ k] ^ b: only the b that makes h == 1 contributes.
      const std::size_t b = pattern256[v ^ k] ? 0u : 1u;
      const std::size_t cls = (v << 1) | b;
      if (cn[cls] == 0.0) continue;
      sh += cn[cls];
      const double* src = cy + cls * samples_;
      for (std::size_t s = 0; s < samples_; ++s) row[s] += src[s];
    }
    e.sum_h_[k] = sh;
  }
  return e;
}

void MultiByteCpa::save(ByteWriter& out) const {
  out.put_u64(samples_);
  out.put_u64(n_);
  out.put_f64_vector(sum_y_);
  out.put_f64_vector(sum_yy_);
  out.put_f64_vector(class_n_);
  out.put_f64_vector(class_y_);
}

void MultiByteCpa::load(ByteReader& in) {
  const std::uint64_t samples = in.get_u64();
  SLM_REQUIRE(samples == samples_, "MultiByteCpa::load: dimension mismatch");
  n_ = in.get_u64();
  sum_y_ = in.get_f64_vector();
  sum_yy_ = in.get_f64_vector();
  class_n_ = in.get_f64_vector();
  class_y_ = in.get_f64_vector();
  SLM_REQUIRE(sum_y_.size() == samples_ && sum_yy_.size() == samples_ &&
                  class_n_.size() == kBytes * kClasses &&
                  class_y_.size() == kBytes * kClasses * samples_,
              "MultiByteCpa::load: corrupt payload");
}

CpaProgressPoint snapshot_progress(const CpaEngine& engine,
                                   std::size_t correct_guess) {
  CpaProgressPoint p;
  p.traces = engine.trace_count();
  p.max_abs_corr = engine.max_abs_correlation();
  p.best_guess = argmax(p.max_abs_corr);
  p.correct_corr = p.max_abs_corr[correct_guess];
  std::size_t rank = 0;
  double best_wrong = 0.0;
  for (std::size_t k = 0; k < p.max_abs_corr.size(); ++k) {
    if (k == correct_guess) continue;
    if (p.max_abs_corr[k] > p.correct_corr) ++rank;
    if (p.max_abs_corr[k] > best_wrong) best_wrong = p.max_abs_corr[k];
  }
  p.correct_rank = rank;
  p.best_wrong_corr = best_wrong;
  return p;
}

}  // namespace slm::sca
