#include "sca/selection.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace slm::sca {

BitSelector::BitSelector(std::size_t bit_count) : ones_(bit_count, 0) {
  SLM_REQUIRE(bit_count > 0, "BitSelector: zero bits");
}

void BitSelector::add(const BitVec& toggle_word) {
  SLM_REQUIRE(toggle_word.size() == ones_.size(),
              "BitSelector::add: word width mismatch");
  ++samples_;
  for (std::size_t i = 0; i < ones_.size(); ++i) {
    if (toggle_word.get(i)) ++ones_[i];
  }
}

void BitSelector::add_batch(const std::vector<std::size_t>& ones,
                            std::size_t samples) {
  SLM_REQUIRE(ones.size() == ones_.size(),
              "BitSelector::add_batch: width mismatch");
  samples_ += samples;
  for (std::size_t i = 0; i < ones_.size(); ++i) {
    SLM_REQUIRE(ones[i] <= samples, "BitSelector::add_batch: count > samples");
    ones_[i] += ones[i];
  }
}

BitStat BitSelector::stat(std::size_t i) const {
  SLM_REQUIRE(i < ones_.size(), "BitSelector::stat: out of range");
  BitStat s;
  s.index = i;
  s.ones = ones_[i];
  s.samples = samples_;
  if (samples_ > 0) {
    s.mean = static_cast<double>(ones_[i]) / static_cast<double>(samples_);
    s.variance = s.mean * (1.0 - s.mean);
  }
  return s;
}

std::vector<BitStat> BitSelector::stats() const {
  std::vector<BitStat> out;
  out.reserve(ones_.size());
  for (std::size_t i = 0; i < ones_.size(); ++i) out.push_back(stat(i));
  return out;
}

std::vector<std::size_t> BitSelector::fluctuating_bits() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ones_.size(); ++i) {
    if (ones_[i] > 0 && ones_[i] < samples_) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> BitSelector::bits_of_interest(
    double min_variance) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ones_.size(); ++i) {
    if (stat(i).variance >= min_variance) out.push_back(i);
  }
  return out;
}

std::size_t BitSelector::highest_variance_bit() const {
  SLM_REQUIRE(samples_ > 0, "BitSelector: no samples yet");
  std::size_t best = 0;
  double best_var = -1.0;
  for (std::size_t i = 0; i < ones_.size(); ++i) {
    const double v = stat(i).variance;
    if (v > best_var) {
      best_var = v;
      best = i;
    }
  }
  return best;
}

std::vector<double> BitSelector::variances() const {
  std::vector<double> out(ones_.size());
  for (std::size_t i = 0; i < ones_.size(); ++i) out[i] = stat(i).variance;
  return out;
}

std::size_t hamming_weight_over(const BitVec& word,
                                const std::vector<std::size_t>& bits) {
  std::size_t hw = 0;
  for (std::size_t i : bits) {
    if (word.get(i)) ++hw;
  }
  return hw;
}

double subset_fraction(const std::vector<std::size_t>& subset,
                       const std::vector<std::size_t>& superset) {
  if (subset.empty()) return 1.0;
  std::size_t contained = 0;
  for (std::size_t x : subset) {
    if (std::binary_search(superset.begin(), superset.end(), x)) ++contained;
  }
  return static_cast<double>(contained) / static_cast<double>(subset.size());
}

}  // namespace slm::sca
