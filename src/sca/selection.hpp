// Post-processing of benign-sensor toggle words (Sec. V-A of the paper):
// find the endpoints that fluctuate at all ("sensitive bits"), rank them
// by variance ("bits of interest", Figs. 8 and 16), and reduce a word to
// a scalar reading via the Hamming weight over selected bits.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitvec.hpp"
#include "common/stats.hpp"

namespace slm::sca {

struct BitStat {
  std::size_t index = 0;
  std::size_t ones = 0;        ///< samples in which the bit was 1
  std::size_t samples = 0;
  double mean = 0.0;
  double variance = 0.0;       ///< Bernoulli variance over the campaign
};

/// Streaming per-bit statistics over toggle words.
class BitSelector {
 public:
  explicit BitSelector(std::size_t bit_count);

  void add(const BitVec& toggle_word);

  /// Merge a pre-accumulated batch: `ones[i]` one-counts per bit over
  /// `samples` toggle words. Equivalent to `samples` add() calls — the
  /// compiled selection pre-pass accumulates counts directly and lands
  /// them here in one step.
  void add_batch(const std::vector<std::size_t>& ones, std::size_t samples);

  std::size_t bit_count() const { return ones_.size(); }
  std::size_t sample_count() const { return samples_; }

  BitStat stat(std::size_t i) const;
  std::vector<BitStat> stats() const;

  /// Bits that changed value at least once (the paper's "sensitive" set).
  std::vector<std::size_t> fluctuating_bits() const;

  /// Bits with variance >= min_variance, ordered by index.
  std::vector<std::size_t> bits_of_interest(double min_variance) const;

  /// Index of the highest-variance bit (the Fig. 12/18 single-bit pick).
  std::size_t highest_variance_bit() const;

  /// Per-bit variances (index-aligned).
  std::vector<double> variances() const;

 private:
  std::size_t samples_ = 0;
  std::vector<std::size_t> ones_;
};

/// Hamming weight of a word restricted to the given bit indices — the
/// paper's scalar sensor reading.
std::size_t hamming_weight_over(const BitVec& word,
                                const std::vector<std::size_t>& bits);

/// Fraction of `subset` contained in `superset` (used for the Fig. 7/15
/// claim that AES-sensitive bits are a subset of RO-sensitive bits).
double subset_fraction(const std::vector<std::size_t>& subset,
                       const std::vector<std::size_t>& superset);

}  // namespace slm::sca
