// Streaming Correlation Power Analysis engine.
//
// Maintains, for every key guess and every sample point, the running sums
// needed for Pearson correlation. Optimised for binary hypotheses: a
// trace update only touches the guesses whose hypothesis bit is 1, so a
// 256-guess x S-sample update costs ~128*S additions. 500k-trace
// campaigns finish in seconds.
//
// Partition invariance (load-bearing for RNG contract v2): sensor
// readings are integer-valued counts, the binary hypotheses are 0/1,
// and every running sum here is a sum of products of those integers —
// each partial sum stays an exactly representable integer far below
// 2^53, so IEEE-754 addition never rounds and the sums are associative
// in practice. That is why the engines may split a campaign's traces
// across any thread count, block size or serial/sharded engine and
// still land on bit-identical accumulators: the set of addends is fixed
// by (seed, trace_index) under contract v2, and exact integer addition
// makes the order and grouping irrelevant. Campaign.ThreadAndBlockInvariant
// pins this property.
#pragma once

#include <cstdint>
#include <vector>

#include "common/binio.hpp"

namespace slm::sca {

class CpaEngine {
 public:
  CpaEngine(std::size_t guess_count, std::size_t sample_count);

  std::size_t guess_count() const { return guesses_; }
  std::size_t sample_count() const { return samples_; }
  std::size_t trace_count() const { return n_; }

  /// One trace: binary hypothesis per guess, measurement per sample.
  void add_trace(const std::vector<std::uint8_t>& h,
                 const std::vector<double>& y);

  /// A block of `count` traces at once: h is count x guess_count
  /// hypothesis rows, y is count x sample_count reading rows, both
  /// trace-major. The per-sample sums stream trace-major and the
  /// per-guess rank-K update runs guess-major with the block's traces
  /// applied in order, so every accumulator slot sees the same addition
  /// sequence as `count` add_trace calls — bit-identical sums, but each
  /// sum_hy_ row stays cache-resident for the whole block.
  void add_traces(const std::uint8_t* h, const double* y, std::size_t count);

  /// Fold another engine's traces into this one. The running sums are
  /// plain sums, so merging N shard engines that together saw the same
  /// traces as one serial engine reproduces the serial sums exactly
  /// (same additions, shard-major order). Dimensions must match.
  void merge(const CpaEngine& other);

  /// Pearson r for (guess, sample); 0 until enough traces.
  double correlation(std::size_t guess, std::size_t sample) const;

  /// max_s |r(guess, s)| — the "total correlation" per candidate that the
  /// paper's Fig. 9a-18a plot.
  std::vector<double> max_abs_correlation() const;

  /// Guess with the highest max-abs correlation.
  std::size_t best_guess() const;

  /// Rank of a guess under max-abs correlation (0 = best).
  std::size_t rank_of(std::size_t guess) const;

  /// Serialize / restore the running sums bit-exactly (raw IEEE-754
  /// doubles). load() requires matching dimensions — checkpoints carry
  /// them in their header — and makes this engine indistinguishable
  /// from the one that was saved. Used by core/checkpoint.
  void save(ByteWriter& out) const;
  void load(ByteReader& in);

 private:
  friend class XorClassCpa;   // fold() reconstructs the sums directly
  friend class MultiByteCpa;  // per-byte fold(), same mechanism

  std::size_t guesses_;
  std::size_t samples_;
  std::size_t n_ = 0;
  std::vector<double> sum_y_;    // [s]
  std::vector<double> sum_yy_;   // [s]
  std::vector<double> sum_h_;    // [k] (h binary: sum_hh == sum_h)
  std::vector<double> sum_hy_;   // [k * samples_ + s]
};

/// Class-binned CPA accumulator for hypothesis families of the shape
///
///   h_k = pattern[v ^ k] ^ b,   v in [0, 256), b in {0, 1}
///
/// which every per-byte last-round bit model has (v = the targeted
/// ciphertext byte, b = the predicted-register ciphertext bit, pattern =
/// one S-box output bit). Instead of updating ~128 of 256 guess rows per
/// trace like CpaEngine::add_trace, a trace lands in one of 512 (v, b)
/// classes: per-class trace counts and per-sample reading sums. fold()
/// reconstructs the full CpaEngine sums from the class sums in one
/// 256 x 512 pass per checkpoint.
///
/// Exactness: sensor readings are integer-valued (see DESIGN.md's
/// determinism contract), so every accumulated double is an integer far
/// below 2^53 and the regrouped summation is bit-identical to the
/// trace-order sums CpaEngine would have produced — fold() output is
/// indistinguishable from the reference path.
class XorClassCpa {
 public:
  explicit XorClassCpa(std::size_t sample_count);

  std::size_t sample_count() const { return samples_; }
  std::size_t trace_count() const { return n_; }

  /// One trace: class value v, class bit b, readings y (size sample_count).
  void add_trace(std::uint8_t v, std::uint8_t b,
                 const std::vector<double>& y);

  /// A block of `count` traces at once: per-trace class values/bits and
  /// trace-major count x sample_count readings. Traces are bucketed by
  /// class with a stable counting sort, then each touched class row is
  /// updated once with its traces in block order — every reading sum
  /// sees the same addition sequence as `count` add_trace calls, and the
  /// class counts are small integers (exact under any regrouping), so
  /// the sums are bit-identical while the scatter becomes a cache-blocked
  /// (class, sample) rank-K update.
  void add_block(const std::uint8_t* v, const std::uint8_t* b,
                 const double* y, std::size_t count);

  /// Fold another accumulator's traces into this one (shard merges).
  void merge(const XorClassCpa& other);

  /// Expand into a full 256-guess CpaEngine under the given 256-entry
  /// 0/1 pattern table.
  CpaEngine fold(const std::uint8_t* pattern256) const;

  /// Bit-exact checkpoint serialization, mirror of CpaEngine::save/load.
  void save(ByteWriter& out) const;
  void load(ByteReader& in);

 private:
  static constexpr std::size_t kClasses = 512;  // (v << 1) | b

  std::size_t samples_;
  std::size_t n_ = 0;
  std::vector<double> sum_y_;      // [s]
  std::vector<double> sum_yy_;     // [s]
  std::vector<double> class_n_;    // [class]
  std::vector<double> class_y_;    // [class * samples_ + s]
};

/// Sixteen XorClassCpa accumulators fused behind one capture stream: the
/// full-key attack captures each trace once and labels it sixteen times,
/// one (v, b) class pair per targeted key byte. The reading sums that do
/// not depend on the byte (sum_y, sum_yy) are shared, so a trace costs
/// one shared pass plus sixteen class-row updates instead of sixteen
/// full campaigns.
///
/// Layout: the per-byte class tables are tiled byte-major —
/// class_n_[byte][class] and class_y_[byte][class][sample] — so
/// fold(byte, ...) reads one contiguous 512 x S tile, the same shape the
/// cache-blocked XorClassCpa::add_block pass was tuned for.
///
/// Exactness: each byte's slice sees exactly the addition sequence a
/// standalone XorClassCpa fed the same (v, b, y) stream would see, and
/// all addends are exact integers (see the partition-invariance note at
/// the top of this header), so fold(byte, pattern) is bit-identical to
/// the standalone engine's fold — the property the fused-vs-farmed
/// equivalence tests pin.
class MultiByteCpa {
 public:
  static constexpr std::size_t kBytes = 16;

  explicit MultiByteCpa(std::size_t sample_count);

  std::size_t sample_count() const { return samples_; }
  std::size_t trace_count() const { return n_; }

  /// One trace: 16 class values, 16 class bits (index = key byte
  /// position), readings y (size sample_count).
  void add_trace(const std::uint8_t* v16, const std::uint8_t* b16,
                 const std::vector<double>& y);

  /// A block of `count` traces: v and b are count x 16 trace-major label
  /// rows (v[t * 16 + byte]), y is count x sample_count trace-major
  /// readings. Per byte this runs the same stable counting sort as
  /// XorClassCpa::add_block, so each byte slice is bit-identical to
  /// `count` add_trace calls while the (class, sample) scatter stays
  /// cache-blocked.
  void add_block(const std::uint8_t* v, const std::uint8_t* b,
                 const double* y, std::size_t count);

  /// Fold another accumulator's traces into this one (shard merges).
  void merge(const MultiByteCpa& other);

  /// Expand one byte's slice into a full 256-guess CpaEngine under that
  /// byte's 256-entry 0/1 pattern table. Bit-identical to the fold of a
  /// standalone XorClassCpa fed the same per-byte stream.
  CpaEngine fold(std::size_t byte, const std::uint8_t* pattern256) const;

  /// Bit-exact checkpoint serialization, mirror of XorClassCpa::save/load.
  void save(ByteWriter& out) const;
  void load(ByteReader& in);

 private:
  static constexpr std::size_t kClasses = 512;  // (v << 1) | b

  std::size_t samples_;
  std::size_t n_ = 0;
  std::vector<double> sum_y_;      // [s], shared across bytes
  std::vector<double> sum_yy_;     // [s], shared across bytes
  std::vector<double> class_n_;    // [byte * kClasses + class]
  std::vector<double> class_y_;    // [(byte * kClasses + class) * samples_ + s]
};

/// One checkpoint of a CPA campaign's convergence (Figs. 9b-18b).
struct CpaProgressPoint {
  std::size_t traces = 0;
  std::vector<double> max_abs_corr;  ///< per guess
  std::size_t best_guess = 0;
  std::size_t correct_rank = 0;      ///< 0 = correct guess leads
  double correct_corr = 0.0;
  double best_wrong_corr = 0.0;
};

/// Evaluate a progress point from an engine, given the correct guess.
CpaProgressPoint snapshot_progress(const CpaEngine& engine,
                                   std::size_t correct_guess);

}  // namespace slm::sca
