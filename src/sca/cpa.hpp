// Streaming Correlation Power Analysis engine.
//
// Maintains, for every key guess and every sample point, the running sums
// needed for Pearson correlation. Optimised for binary hypotheses: a
// trace update only touches the guesses whose hypothesis bit is 1, so a
// 256-guess x S-sample update costs ~128*S additions. 500k-trace
// campaigns finish in seconds.
//
// Integer-exact contract (load-bearing for RNG contract v2 and for the
// SIMD dispatch in sca/fold_kernels.hpp): sensor readings are
// integer-valued counts with |y| <= 2^20 and the binary hypotheses are
// 0/1, so every running sum is an exact int64 — accumulation IS integer
// arithmetic, not floating point that happens to stay exact. Addition
// order and grouping are therefore irrelevant by construction: any
// thread count, block size, vector width or serial/sharded engine lands
// on bit-identical accumulator state, and the AVX2/SSE2/scalar kernels
// are interchangeable. Correlations are evaluated at read-out time by
// casting the exact integer sums to double (exact below 2^53 — the
// overflow budget in fold_kernels.hpp keeps them there) and running the
// same double expression the legacy all-double engine used, so read-outs
// are bit-identical to every artifact the old engine produced.
// Campaign.ThreadAndBlockInvariant and tests/sca/fold_dispatch_test.cpp
// pin this property.
#pragma once

#include <cstdint>
#include <vector>

#include "common/binio.hpp"

namespace slm::sca {

class CpaEngine {
 public:
  CpaEngine(std::size_t guess_count, std::size_t sample_count);

  std::size_t guess_count() const { return guesses_; }
  std::size_t sample_count() const { return samples_; }
  std::size_t trace_count() const { return n_; }

  /// One trace: binary hypothesis per guess, measurement per sample.
  /// Readings must be integer-valued (|y| <= 2^20); throws otherwise,
  /// and throws before touching any accumulator when the trace would
  /// exceed the overflow budget (fold_kernels.hpp).
  void add_trace(const std::vector<std::uint8_t>& h,
                 const std::vector<double>& y);

  /// A block of `count` traces at once: h is count x guess_count
  /// hypothesis rows, y is count x sample_count reading rows, both
  /// trace-major. The readings are staged to int64 (values and squares)
  /// once, then the per-sample sums and the guess-major rank-K update
  /// run through the dispatched vector kernels — exact integer addition
  /// makes the result identical to `count` add_trace calls at any lane
  /// width, while each sum_hy_ row stays cache-resident for the block.
  void add_traces(const std::uint8_t* h, const double* y, std::size_t count);

  /// Fold another engine's traces into this one. The running sums are
  /// plain integer sums, so merging N shard engines that together saw
  /// the same traces as one serial engine reproduces the serial sums
  /// exactly. Dimensions must match.
  void merge(const CpaEngine& other);

  /// Pearson r for (guess, sample); 0 until enough traces.
  double correlation(std::size_t guess, std::size_t sample) const;

  /// max_s |r(guess, s)| — the "total correlation" per candidate that the
  /// paper's Fig. 9a-18a plot.
  std::vector<double> max_abs_correlation() const;

  /// Guess with the highest max-abs correlation.
  std::size_t best_guess() const;

  /// Rank of a guess under max-abs correlation (0 = best).
  std::size_t rank_of(std::size_t guess) const;

  /// Serialize / restore the running sums bit-exactly. The on-disk
  /// fields stay IEEE-754 doubles (no format bump): in-budget integer
  /// sums are below 2^53, so the int64 <-> double bridge is exact and
  /// verified in both directions. load() requires matching dimensions —
  /// checkpoints carry them in their header — and makes this engine
  /// indistinguishable from the one that was saved. Used by
  /// core/checkpoint.
  void save(ByteWriter& out) const;
  void load(ByteReader& in);

 private:
  friend class XorClassCpa;   // fold() reconstructs the sums directly
  friend class MultiByteCpa;  // per-byte fold(), same mechanism

  std::size_t guesses_;
  std::size_t samples_;
  std::size_t n_ = 0;
  std::vector<std::int64_t> sum_y_;    // [s]
  std::vector<std::int64_t> sum_yy_;   // [s]
  std::vector<std::int64_t> sum_h_;    // [k] (h binary: sum_hh == sum_h)
  std::vector<std::int64_t> sum_hy_;   // [k * samples_ + s]
};

/// Class-binned CPA accumulator for hypothesis families of the shape
///
///   h_k = pattern[v ^ k] ^ b,   v in [0, 256), b in {0, 1}
///
/// which every per-byte last-round bit model has (v = the targeted
/// ciphertext byte, b = the predicted-register ciphertext bit, pattern =
/// one S-box output bit). Instead of updating ~128 of 256 guess rows per
/// trace like CpaEngine::add_trace, a trace lands in one of 512 (v, b)
/// classes: per-class trace counts and per-sample reading sums. fold()
/// reconstructs the full CpaEngine sums from the class sums in one
/// 256 x 512 pass per checkpoint.
///
/// Exactness: the accumulators are exact int64 sums of integer readings
/// (see the contract at the top of this header), so the regrouped
/// summation is identical to the trace-order sums CpaEngine would have
/// produced — not merely close, the same bits, at every dispatch level.
/// fold() output is indistinguishable from the reference path.
class XorClassCpa {
 public:
  explicit XorClassCpa(std::size_t sample_count);

  std::size_t sample_count() const { return samples_; }
  std::size_t trace_count() const { return n_; }

  /// One trace: class value v, class bit b, readings y (size sample_count).
  void add_trace(std::uint8_t v, std::uint8_t b,
                 const std::vector<double>& y);

  /// A block of `count` traces at once: per-trace class values/bits and
  /// trace-major count x sample_count readings. The readings are staged
  /// to int64 once, the unclassed sums fold in one column sweep, and
  /// each trace's staged row is scattered into its class row through
  /// the dispatched kernels — exact integer addition makes the scatter
  /// order irrelevant (no bucketing pass needed), and the class rows
  /// stay cache-resident.
  void add_block(const std::uint8_t* v, const std::uint8_t* b,
                 const double* y, std::size_t count);

  /// Fold another accumulator's traces into this one (shard merges).
  void merge(const XorClassCpa& other);

  /// Expand into a full 256-guess CpaEngine under the given 256-entry
  /// 0/1 pattern table.
  CpaEngine fold(const std::uint8_t* pattern256) const;

  /// Bit-exact checkpoint serialization, mirror of CpaEngine::save/load.
  void save(ByteWriter& out) const;
  void load(ByteReader& in);

 private:
  static constexpr std::size_t kClasses = 512;  // (v << 1) | b

  std::size_t samples_;
  std::size_t n_ = 0;
  std::vector<std::int64_t> sum_y_;      // [s]
  std::vector<std::int64_t> sum_yy_;     // [s]
  std::vector<std::int64_t> class_n_;    // [class]
  std::vector<std::int64_t> class_y_;    // [class * samples_ + s]
};

/// Sixteen XorClassCpa accumulators fused behind one capture stream: the
/// full-key attack captures each trace once and labels it sixteen times,
/// one (v, b) class pair per targeted key byte. The reading sums that do
/// not depend on the byte (sum_y, sum_yy) are shared, so a trace costs
/// one shared pass plus sixteen class-row updates instead of sixteen
/// full campaigns.
///
/// Layout: the per-byte class tables are tiled byte-major —
/// class_n_[byte][class] and class_y_[byte][class][sample] — so
/// fold(byte, ...) reads one contiguous 512 x S tile, the same shape the
/// cache-blocked XorClassCpa::add_block pass was tuned for.
///
/// Exactness: each byte's slice holds exactly the integer sums a
/// standalone XorClassCpa fed the same (v, b, y) stream would hold
/// (exact int64 addition is order-free), so fold(byte, pattern) is
/// bit-identical to the standalone engine's fold — the property the
/// fused-vs-farmed equivalence tests pin.
class MultiByteCpa {
 public:
  static constexpr std::size_t kBytes = 16;

  explicit MultiByteCpa(std::size_t sample_count);

  std::size_t sample_count() const { return samples_; }
  std::size_t trace_count() const { return n_; }

  /// One trace: 16 class values, 16 class bits (index = key byte
  /// position), readings y (size sample_count).
  void add_trace(const std::uint8_t* v16, const std::uint8_t* b16,
                 const std::vector<double>& y);

  /// A block of `count` traces: v and b are count x 16 trace-major label
  /// rows (v[t * 16 + byte]), y is count x sample_count trace-major
  /// readings. The readings are staged to int64 once and each byte's
  /// class rows take one dispatched scatter pass over the staged block
  /// (same kernels as XorClassCpa::add_block), so each byte slice holds
  /// the same exact sums as `count` add_trace calls while the
  /// (class, sample) scatter stays cache-blocked.
  void add_block(const std::uint8_t* v, const std::uint8_t* b,
                 const double* y, std::size_t count);

  /// Fold another accumulator's traces into this one (shard merges).
  void merge(const MultiByteCpa& other);

  /// Expand one byte's slice into a full 256-guess CpaEngine under that
  /// byte's 256-entry 0/1 pattern table. Bit-identical to the fold of a
  /// standalone XorClassCpa fed the same per-byte stream.
  CpaEngine fold(std::size_t byte, const std::uint8_t* pattern256) const;

  /// Bit-exact checkpoint serialization, mirror of XorClassCpa::save/load.
  void save(ByteWriter& out) const;
  void load(ByteReader& in);

 private:
  static constexpr std::size_t kClasses = 512;  // (v << 1) | b

  std::size_t samples_;
  std::size_t n_ = 0;
  std::vector<std::int64_t> sum_y_;    // [s], shared across bytes
  std::vector<std::int64_t> sum_yy_;   // [s], shared across bytes
  std::vector<std::int64_t> class_n_;  // [byte * kClasses + class]
  std::vector<std::int64_t> class_y_;  // [(byte * kClasses + class) * samples_ + s]
};

/// One checkpoint of a CPA campaign's convergence (Figs. 9b-18b).
struct CpaProgressPoint {
  std::size_t traces = 0;
  std::vector<double> max_abs_corr;  ///< per guess
  std::size_t best_guess = 0;
  std::size_t correct_rank = 0;      ///< 0 = correct guess leads
  double correct_corr = 0.0;
  double best_wrong_corr = 0.0;
};

/// Evaluate a progress point from an engine, given the correct guess.
CpaProgressPoint snapshot_progress(const CpaEngine& engine,
                                   std::size_t correct_guess);

}  // namespace slm::sca
