// Streaming Correlation Power Analysis engine.
//
// Maintains, for every key guess and every sample point, the running sums
// needed for Pearson correlation. Optimised for binary hypotheses: a
// trace update only touches the guesses whose hypothesis bit is 1, so a
// 256-guess x S-sample update costs ~128*S additions. 500k-trace
// campaigns finish in seconds.
#pragma once

#include <cstdint>
#include <vector>

namespace slm::sca {

class CpaEngine {
 public:
  CpaEngine(std::size_t guess_count, std::size_t sample_count);

  std::size_t guess_count() const { return guesses_; }
  std::size_t sample_count() const { return samples_; }
  std::size_t trace_count() const { return n_; }

  /// One trace: binary hypothesis per guess, measurement per sample.
  void add_trace(const std::vector<std::uint8_t>& h,
                 const std::vector<double>& y);

  /// Fold another engine's traces into this one. The running sums are
  /// plain sums, so merging N shard engines that together saw the same
  /// traces as one serial engine reproduces the serial sums exactly
  /// (same additions, shard-major order). Dimensions must match.
  void merge(const CpaEngine& other);

  /// Pearson r for (guess, sample); 0 until enough traces.
  double correlation(std::size_t guess, std::size_t sample) const;

  /// max_s |r(guess, s)| — the "total correlation" per candidate that the
  /// paper's Fig. 9a-18a plot.
  std::vector<double> max_abs_correlation() const;

  /// Guess with the highest max-abs correlation.
  std::size_t best_guess() const;

  /// Rank of a guess under max-abs correlation (0 = best).
  std::size_t rank_of(std::size_t guess) const;

 private:
  std::size_t guesses_;
  std::size_t samples_;
  std::size_t n_ = 0;
  std::vector<double> sum_y_;    // [s]
  std::vector<double> sum_yy_;   // [s]
  std::vector<double> sum_h_;    // [k] (h binary: sum_hh == sum_h)
  std::vector<double> sum_hy_;   // [k * samples_ + s]
};

/// One checkpoint of a CPA campaign's convergence (Figs. 9b-18b).
struct CpaProgressPoint {
  std::size_t traces = 0;
  std::vector<double> max_abs_corr;  ///< per guess
  std::size_t best_guess = 0;
  std::size_t correct_rank = 0;      ///< 0 = correct guess leads
  double correct_corr = 0.0;
  double best_wrong_corr = 0.0;
};

/// Evaluate a progress point from an engine, given the correct guess.
CpaProgressPoint snapshot_progress(const CpaEngine& engine,
                                   std::size_t correct_guess);

}  // namespace slm::sca
