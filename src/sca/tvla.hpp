// TVLA-style leakage assessment: Welch's t-test between a fixed-input
// trace population and a random-input population (the standard
// non-specific leakage test). |t| > 4.5 is the conventional evidence
// threshold that a sensor observes data-dependent leakage — a
// lighter-weight assessment than a full key-recovery CPA.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.hpp"

namespace slm::sca {

class WelchTTest {
 public:
  explicit WelchTTest(std::size_t sample_count);

  /// Add one trace to the fixed (true) or random (false) population.
  void add(bool fixed_population, const std::vector<double>& samples);

  std::size_t sample_count() const { return fixed_.size(); }
  std::size_t fixed_traces() const;
  std::size_t random_traces() const;

  /// Welch's t statistic at one sample point (0 until both populations
  /// have >= 2 traces).
  double t_statistic(std::size_t sample) const;

  /// max_s |t| — the headline leakage number.
  double max_abs_t() const;

  /// Conventional evidence-of-leakage threshold.
  static constexpr double kThreshold = 4.5;

  bool leakage_detected() const { return max_abs_t() > kThreshold; }

 private:
  std::vector<OnlineMeanVar> fixed_;
  std::vector<OnlineMeanVar> random_;
};

}  // namespace slm::sca
