// TVLA-style leakage assessment: Welch's t-test between a fixed-input
// trace population and a random-input population (the standard
// non-specific leakage test). |t| > 4.5 is the conventional evidence
// threshold that a sensor observes data-dependent leakage — a
// lighter-weight assessment than a full key-recovery CPA.
//
// Like the CPA engines (sca/cpa.hpp), the accumulators are exact int64
// sums of the integer-valued readings — per population, per sample:
// trace count, sum and sum of squares. The t statistic is evaluated in
// double from the exact sums at read-out time, so population order and
// grouping never perturb the accumulated state (the fused one-pass
// replay relies on this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace slm::sca {

class WelchTTest {
 public:
  explicit WelchTTest(std::size_t sample_count);

  /// Add one trace to the fixed (true) or random (false) population.
  /// Readings must be integer-valued (|y| <= 2^20, see
  /// sca/fold_kernels.hpp); throws otherwise, and refuses traces beyond
  /// the integer-accumulator overflow budget.
  void add(bool fixed_population, const std::vector<double>& samples);

  /// Same, from a raw row of sample_count() readings (the zero-copy
  /// replay path feeds mmap'd rows here without a per-trace copy).
  void add(bool fixed_population, const double* samples);

  std::size_t sample_count() const { return samples_; }
  std::size_t fixed_traces() const { return fixed_n_; }
  std::size_t random_traces() const { return random_n_; }

  /// Welch's t statistic at one sample point (0 until both populations
  /// have >= 2 traces). Computed in double from the exact integer sums.
  double t_statistic(std::size_t sample) const;

  /// max_s |t| — the headline leakage number.
  double max_abs_t() const;

  /// Conventional evidence-of-leakage threshold.
  static constexpr double kThreshold = 4.5;

  bool leakage_detected() const { return max_abs_t() > kThreshold; }

 private:
  std::size_t samples_;
  std::size_t fixed_n_ = 0;
  std::size_t random_n_ = 0;
  std::vector<std::int64_t> fixed_sum_;    // [s]
  std::vector<std::int64_t> fixed_sumsq_;  // [s]
  std::vector<std::int64_t> random_sum_;   // [s]
  std::vector<std::int64_t> random_sumsq_; // [s]
};

}  // namespace slm::sca
