#include "sca/fold_kernels.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define SLM_FOLD_X86 1
#include <immintrin.h>
#else
#define SLM_FOLD_X86 0
#endif

namespace slm::sca {
namespace {

// --- Scalar reference kernels ------------------------------------------
//
// The oracle every wider level is checked against. Vectorization is
// disabled so "scalar" in benchmarks and in SLM_SIMD=0 runs means one
// lane, not whatever the autovectorizer felt like.
#if defined(__GNUC__) && !defined(__clang__)
#define SLM_NO_VECTORIZE __attribute__((optimize("no-tree-vectorize")))
#else
#define SLM_NO_VECTORIZE
#endif

SLM_NO_VECTORIZE
void add_i64_scalar(std::int64_t* dst, const std::int64_t* src,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

SLM_NO_VECTORIZE
void add2_i64_scalar(std::int64_t* dst_y, std::int64_t* dst_yy,
                     const std::int64_t* y, const std::int64_t* yy,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst_y[i] += y[i];
    dst_yy[i] += yy[i];
  }
}

SLM_NO_VECTORIZE
void sum_cols2_i64_scalar(std::int64_t* dst_y, std::int64_t* dst_yy,
                          const std::int64_t* y, const std::int64_t* yy,
                          std::size_t count, std::size_t n) {
  for (std::size_t s = 0; s < n; ++s) {
    std::int64_t ay = 0;
    std::int64_t ayy = 0;
    for (std::size_t t = 0; t < count; ++t) {
      ay += y[t * n + s];
      ayy += yy[t * n + s];
    }
    dst_y[s] += ay;
    dst_yy[s] += ayy;
  }
}

SLM_NO_VECTORIZE
void scatter_rows_i64_scalar(std::int64_t* dst, const std::int64_t* src,
                             const std::uint32_t* cls, std::size_t rows,
                             std::size_t n) {
  for (std::size_t r = 0; r < rows; ++r) {
    std::int64_t* row = dst + static_cast<std::size_t>(cls[r]) * n;
    const std::int64_t* s = src + r * n;
    for (std::size_t i = 0; i < n; ++i) row[i] += s[i];
  }
}

#if SLM_FOLD_X86

// --- SSE2 kernels (baseline on x86-64, 2 lanes) -------------------------

void add_i64_sse2(std::int64_t* dst, const std::int64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_add_epi64(d, s));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void add2_i64_sse2(std::int64_t* dst_y, std::int64_t* dst_yy,
                   const std::int64_t* y, const std::int64_t* yy,
                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i dy =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst_y + i));
    const __m128i sy =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(y + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst_y + i),
                     _mm_add_epi64(dy, sy));
    const __m128i dq =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst_yy + i));
    const __m128i sq =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(yy + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst_yy + i),
                     _mm_add_epi64(dq, sq));
  }
  for (; i < n; ++i) {
    dst_y[i] += y[i];
    dst_yy[i] += yy[i];
  }
}

// --- AVX2 kernels (4 lanes) ---------------------------------------------
//
// Pure vpaddq: the squares are staged during the double->int64
// conversion pass precisely because AVX2 has no 64x64 multiply
// (vpmullq is AVX-512DQ), so the hot loops never multiply.

__attribute__((target("avx2"))) void add_i64_avx2(std::int64_t* dst,
                                                  const std::int64_t* src,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi64(d, s));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

__attribute__((target("avx2"))) void add2_i64_avx2(std::int64_t* dst_y,
                                                   std::int64_t* dst_yy,
                                                   const std::int64_t* y,
                                                   const std::int64_t* yy,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i dy =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst_y + i));
    const __m256i sy =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst_y + i),
                        _mm256_add_epi64(dy, sy));
    const __m256i dq =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst_yy + i));
    const __m256i sq =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(yy + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst_yy + i),
                        _mm256_add_epi64(dq, sq));
  }
  for (; i < n; ++i) {
    dst_y[i] += y[i];
    dst_yy[i] += yy[i];
  }
}

void sum_cols2_i64_sse2(std::int64_t* dst_y, std::int64_t* dst_yy,
                        const std::int64_t* y, const std::int64_t* yy,
                        std::size_t count, std::size_t n) {
  std::size_t s = 0;
  for (; s + 2 <= n; s += 2) {
    __m128i ay = _mm_setzero_si128();
    __m128i ayy = _mm_setzero_si128();
    for (std::size_t t = 0; t < count; ++t) {
      ay = _mm_add_epi64(
          ay, _mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(y + t * n + s)));
      ayy = _mm_add_epi64(
          ayy, _mm_loadu_si128(
                   reinterpret_cast<const __m128i*>(yy + t * n + s)));
    }
    const __m128i dy =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst_y + s));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst_y + s),
                     _mm_add_epi64(dy, ay));
    const __m128i dq =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst_yy + s));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst_yy + s),
                     _mm_add_epi64(dq, ayy));
  }
  for (; s < n; ++s) {
    std::int64_t ay = 0;
    std::int64_t ayy = 0;
    for (std::size_t t = 0; t < count; ++t) {
      ay += y[t * n + s];
      ayy += yy[t * n + s];
    }
    dst_y[s] += ay;
    dst_yy[s] += ayy;
  }
}

void scatter_rows_i64_sse2(std::int64_t* dst, const std::int64_t* src,
                           const std::uint32_t* cls, std::size_t rows,
                           std::size_t n) {
  for (std::size_t r = 0; r < rows; ++r) {
    add_i64_sse2(dst + static_cast<std::size_t>(cls[r]) * n, src + r * n, n);
  }
}

__attribute__((target("avx2"))) void sum_cols2_i64_avx2(
    std::int64_t* dst_y, std::int64_t* dst_yy, const std::int64_t* y,
    const std::int64_t* yy, std::size_t count, std::size_t n) {
  std::size_t s = 0;
  for (; s + 4 <= n; s += 4) {
    // Two running accumulators per stream break the add latency chain;
    // exact integer addition makes the pairing bit-transparent.
    __m256i ay0 = _mm256_setzero_si256();
    __m256i ay1 = _mm256_setzero_si256();
    __m256i ayy0 = _mm256_setzero_si256();
    __m256i ayy1 = _mm256_setzero_si256();
    std::size_t t = 0;
    for (; t + 2 <= count; t += 2) {
      ay0 = _mm256_add_epi64(
          ay0, _mm256_loadu_si256(
                   reinterpret_cast<const __m256i*>(y + t * n + s)));
      ay1 = _mm256_add_epi64(
          ay1, _mm256_loadu_si256(
                   reinterpret_cast<const __m256i*>(y + (t + 1) * n + s)));
      ayy0 = _mm256_add_epi64(
          ayy0, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(yy + t * n + s)));
      ayy1 = _mm256_add_epi64(
          ayy1,
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(yy + (t + 1) * n + s)));
    }
    if (t < count) {
      ay0 = _mm256_add_epi64(
          ay0, _mm256_loadu_si256(
                   reinterpret_cast<const __m256i*>(y + t * n + s)));
      ayy0 = _mm256_add_epi64(
          ayy0, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(yy + t * n + s)));
    }
    const __m256i ay = _mm256_add_epi64(ay0, ay1);
    const __m256i ayy = _mm256_add_epi64(ayy0, ayy1);
    const __m256i dy =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst_y + s));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst_y + s),
                        _mm256_add_epi64(dy, ay));
    const __m256i dq =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst_yy + s));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst_yy + s),
                        _mm256_add_epi64(dq, ayy));
  }
  for (; s < n; ++s) {
    std::int64_t ay = 0;
    std::int64_t ayy = 0;
    for (std::size_t t = 0; t < count; ++t) {
      ay += y[t * n + s];
      ayy += yy[t * n + s];
    }
    dst_y[s] += ay;
    dst_yy[s] += ayy;
  }
}

__attribute__((target("avx2"))) inline void scatter_one_row_avx2(
    std::int64_t* row, const std::int64_t* sr, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sr + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + i),
                        _mm256_add_epi64(d, v));
  }
  for (; i < n; ++i) row[i] += sr[i];
}

__attribute__((target("avx2"))) void scatter_rows_i64_avx2(
    std::int64_t* dst, const std::int64_t* src, const std::uint32_t* cls,
    std::size_t rows, std::size_t n) {
  // Two rows per step when their destinations differ (the common case —
  // class collisions inside one block are rare), interleaving two
  // independent read-add-store streams. Colliding pairs run
  // sequentially; exact integer addition keeps every path bit-equal.
  std::size_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    std::int64_t* row0 = dst + static_cast<std::size_t>(cls[r]) * n;
    std::int64_t* row1 = dst + static_cast<std::size_t>(cls[r + 1]) * n;
    const std::int64_t* s0 = src + r * n;
    const std::int64_t* s1 = s0 + n;
    if (cls[r] == cls[r + 1]) {
      scatter_one_row_avx2(row0, s0, n);
      scatter_one_row_avx2(row1, s1, n);
      continue;
    }
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256i d0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row0 + i));
      const __m256i v0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s0 + i));
      const __m256i d1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row1 + i));
      const __m256i v1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s1 + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(row0 + i),
                          _mm256_add_epi64(d0, v0));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(row1 + i),
                          _mm256_add_epi64(d1, v1));
    }
    for (; i < n; ++i) {
      row0[i] += s0[i];
      row1[i] += s1[i];
    }
  }
  if (r < rows) {
    scatter_one_row_avx2(dst + static_cast<std::size_t>(cls[r]) * n,
                         src + r * n, n);
  }
}

// AVX2 staging: 4 doubles -> 4 int64 + squares per step. The readings
// fit int32 by contract (|y| <= 2^20), so the lane pipeline is
// cvttpd -> int32, back-convert + compare to validate exactness, widen
// to int64, and square via the 32x32->64 low-lane multiply (AVX2 has no
// 64x64 product). Any violating chunk falls back to the scalar stager,
// which throws the precise per-element contract error.
__attribute__((target("avx2"))) void stage_i64_avx2(const double* y,
                                                    std::size_t n,
                                                    std::int64_t* yi,
                                                    std::int64_t* yyi) {
  const __m256d limit = _mm256_set1_pd(static_cast<double>(kMaxAbsReading));
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  // Validation is batched: each chunk ANDs its exact/in-range masks into
  // `okv`, checked ONCE after the sweep — no per-chunk branch, so the
  // loop runs at conversion throughput. On any violation the scalar
  // stager reruns the whole range to throw the precise per-element
  // error; the staging buffers are scratch, nothing downstream has been
  // touched yet.
  __m256d okv0 = _mm256_cmp_pd(limit, limit, _CMP_EQ_OQ);  // all-true
  __m256d okv1 = okv0;
  std::size_t i = 0;
  // Two chunks per iteration with independent ok-chains: the AND
  // accumulation is the only loop-carried dependency, so splitting it
  // keeps the conversions running at throughput.
  for (; i + 8 <= n; i += 8) {
    const __m256d va = _mm256_loadu_pd(y + i);
    const __m256d vb = _mm256_loadu_pd(y + i + 4);
    const __m128i a32 = _mm256_cvttpd_epi32(va);
    const __m128i b32 = _mm256_cvttpd_epi32(vb);
    okv0 = _mm256_and_pd(
        okv0, _mm256_cmp_pd(va, _mm256_cvtepi32_pd(a32), _CMP_EQ_OQ));
    okv1 = _mm256_and_pd(
        okv1, _mm256_cmp_pd(vb, _mm256_cvtepi32_pd(b32), _CMP_EQ_OQ));
    okv0 = _mm256_and_pd(
        okv0, _mm256_cmp_pd(_mm256_andnot_pd(sign_mask, va), limit,
                            _CMP_LE_OQ));
    okv1 = _mm256_and_pd(
        okv1, _mm256_cmp_pd(_mm256_andnot_pd(sign_mask, vb), limit,
                            _CMP_LE_OQ));
    const __m256i a64 = _mm256_cvtepi32_epi64(a32);
    const __m256i b64 = _mm256_cvtepi32_epi64(b32);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(yi + i), a64);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(yi + i + 4), b64);
    // mul_epi32 multiplies the (signed) low dword of each 64-bit lane:
    // exactly v*v for |v| <= 2^20.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(yyi + i),
                        _mm256_mul_epi32(a64, a64));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(yyi + i + 4),
                        _mm256_mul_epi32(b64, b64));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(y + i);
    const __m128i v32 = _mm256_cvttpd_epi32(v);
    okv0 = _mm256_and_pd(
        okv0, _mm256_cmp_pd(v, _mm256_cvtepi32_pd(v32), _CMP_EQ_OQ));
    okv0 = _mm256_and_pd(
        okv0,
        _mm256_cmp_pd(_mm256_andnot_pd(sign_mask, v), limit, _CMP_LE_OQ));
    const __m256i v64 = _mm256_cvtepi32_epi64(v32);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(yi + i), v64);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(yyi + i),
                        _mm256_mul_epi32(v64, v64));
  }
  if (_mm256_movemask_pd(_mm256_and_pd(okv0, okv1)) != 0xf) {
    stage_readings_i64(y, i, yi, yyi);  // throws, precisely
  }
  if (i < n) stage_readings_i64(y + i, n - i, yi + i, yyi + i);
}

#endif  // SLM_FOLD_X86

constexpr FoldKernels kScalarKernels{
    DispatchLevel::kScalar, add_i64_scalar,       add2_i64_scalar,
    stage_readings_i64,     sum_cols2_i64_scalar, scatter_rows_i64_scalar};
#if SLM_FOLD_X86
constexpr FoldKernels kSse2Kernels{
    DispatchLevel::kSse2, add_i64_sse2,       add2_i64_sse2,
    stage_readings_i64,   sum_cols2_i64_sse2, scatter_rows_i64_sse2};
constexpr FoldKernels kAvx2Kernels{
    DispatchLevel::kAvx2, add_i64_avx2,       add2_i64_avx2,
    stage_i64_avx2,       sum_cols2_i64_avx2, scatter_rows_i64_avx2};
#endif

// SLM_SIMD parse, shared with core::resolve_simd. Unset or "auto"
// means pick the best the CPU supports; any value that neither names a
// level nor parses as nonzero keeps the historical atoi semantics and
// lands on scalar.
DispatchLevel resolve_from_env() {
  const char* env = std::getenv("SLM_SIMD");
  if (env == nullptr) return detect_dispatch();
  if (std::strcmp(env, "auto") == 0) return detect_dispatch();
  if (std::strcmp(env, "scalar") == 0) return DispatchLevel::kScalar;
  if (std::strcmp(env, "sse2") == 0) {
    SLM_REQUIRE(detect_dispatch() >= DispatchLevel::kSse2,
                "SLM_SIMD=sse2 requested but this CPU has no SSE2 kernels");
    return DispatchLevel::kSse2;
  }
  if (std::strcmp(env, "avx2") == 0) {
    SLM_REQUIRE(detect_dispatch() >= DispatchLevel::kAvx2,
                "SLM_SIMD=avx2 requested but this CPU has no AVX2");
    return DispatchLevel::kAvx2;
  }
  return std::atoi(env) != 0 ? detect_dispatch() : DispatchLevel::kScalar;
}

std::atomic<int> g_forced{-1};

}  // namespace

const char* dispatch_level_name(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return "scalar";
    case DispatchLevel::kSse2:
      return "sse2";
    case DispatchLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

void require_fold_budget(std::size_t traces, const char* who) {
  SLM_REQUIRE(traces <= kMaxFoldTraces,
              std::string(who) + ": " + std::to_string(traces) +
                  " traces exceed the integer-accumulator overflow budget (" +
                  std::to_string(kMaxFoldTraces) +
                  " traces keeps worst-case sum_yy below 2^62)");
}

DispatchLevel detect_dispatch() {
#if SLM_FOLD_X86
  if (__builtin_cpu_supports("avx2")) return DispatchLevel::kAvx2;
  return DispatchLevel::kSse2;  // baseline on x86-64
#else
  return DispatchLevel::kScalar;
#endif
}

DispatchLevel active_dispatch() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<DispatchLevel>(forced);
  static const DispatchLevel resolved = resolve_from_env();
  return resolved;
}

const FoldKernels& kernels(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return kScalarKernels;
#if SLM_FOLD_X86
    case DispatchLevel::kSse2:
      return kSse2Kernels;
    case DispatchLevel::kAvx2:
      SLM_REQUIRE(detect_dispatch() >= DispatchLevel::kAvx2,
                  "AVX2 kernels requested but this CPU has no AVX2");
      return kAvx2Kernels;
#else
    default:
      SLM_REQUIRE(level == DispatchLevel::kScalar,
                  "only scalar fold kernels exist on this architecture");
      return kScalarKernels;
#endif
  }
  return kScalarKernels;
}

const FoldKernels& active_kernels() { return kernels(active_dispatch()); }

void force_dispatch_for_testing(DispatchLevel level) {
  (void)kernels(level);  // validate the level is runnable before forcing
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_forced_dispatch_for_testing() {
  g_forced.store(-1, std::memory_order_relaxed);
}

void stage_readings_i64(const double* y, std::size_t n, std::int64_t* yi,
                        std::int64_t* yyi) {
  for (std::size_t i = 0; i < n; ++i) {
    const double v = y[i];
    SLM_REQUIRE(std::abs(v) <= static_cast<double>(kMaxAbsReading),
                "sensor reading " + std::to_string(v) +
                    " exceeds the integer fold range (|y| <= 2^20)");
    const std::int64_t iv = static_cast<std::int64_t>(v);
    SLM_REQUIRE(static_cast<double>(iv) == v,
                "sensor reading " + std::to_string(v) +
                    " is not integer-valued; the fold engine accumulates "
                    "exact integers");
    yi[i] = iv;
    yyi[i] = iv * iv;
  }
}

std::vector<double> sums_to_f64_exact(const std::vector<std::int64_t>& v,
                                      const char* who) {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double d = static_cast<double>(v[i]);
    SLM_REQUIRE(static_cast<std::int64_t>(d) == v[i],
                std::string(who) +
                    ": integer sum does not round-trip through the on-disk "
                    "double field (exceeds 2^53)");
    out[i] = d;
  }
  return out;
}

std::vector<std::int64_t> sums_from_f64_exact(const std::vector<double>& v,
                                              const char* who) {
  std::vector<std::int64_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double d = v[i];
    const std::int64_t iv = static_cast<std::int64_t>(d);
    SLM_REQUIRE(static_cast<double>(iv) == d,
                std::string(who) +
                    ": stored accumulator field is not an exact integer");
    out[i] = iv;
  }
  return out;
}

}  // namespace slm::sca
