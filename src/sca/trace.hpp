// In-memory trace set with the plaintext/ciphertext bookkeeping of the
// paper's workstation scripts, plus CSV persistence. Large CPA campaigns
// stream traces instead (see core::CpaCampaign); this container serves
// the preliminary experiments and file interchange.
#pragma once

#include <iosfwd>
#include <vector>

#include "crypto/aes128.hpp"

namespace slm::sca {

class TraceSet {
 public:
  TraceSet() = default;
  explicit TraceSet(std::size_t samples_per_trace)
      : samples_per_trace_(samples_per_trace) {}

  std::size_t trace_count() const { return traces_.size(); }
  std::size_t samples_per_trace() const { return samples_per_trace_; }

  /// Append a trace; `samples` must match samples_per_trace (the first
  /// append fixes it when constructed with 0).
  void add(std::vector<double> samples, const crypto::Block& plaintext,
           const crypto::Block& ciphertext);

  const std::vector<double>& trace(std::size_t i) const;
  const crypto::Block& plaintext(std::size_t i) const;
  const crypto::Block& ciphertext(std::size_t i) const;

  /// Per-sample variance over all traces (bit-of-interest screening).
  std::vector<double> sample_variances() const;

  /// Write as CSV: ct (hex), then samples. Reload with load_csv.
  void save_csv(std::ostream& os) const;
  static TraceSet load_csv(std::istream& is);

 private:
  std::size_t samples_per_trace_ = 0;
  std::vector<std::vector<double>> traces_;
  std::vector<crypto::Block> plaintexts_;
  std::vector<crypto::Block> ciphertexts_;
};

}  // namespace slm::sca
