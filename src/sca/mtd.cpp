#include "sca/mtd.hpp"

namespace slm::sca {

MtdResult estimate_mtd(const std::vector<CpaProgressPoint>& progress) {
  MtdResult result;
  if (progress.empty()) return result;

  const auto& last = progress.back();
  result.final_margin = last.correct_corr - last.best_wrong_corr;
  if (last.correct_rank != 0) return result;  // never stably disclosed

  // Walk backwards: find the earliest suffix where rank stays 0.
  std::size_t first_stable = progress.size() - 1;
  for (std::size_t i = progress.size(); i-- > 0;) {
    if (progress[i].correct_rank == 0) {
      first_stable = i;
    } else {
      break;
    }
  }
  result.traces = progress[first_stable].traces;
  return result;
}

}  // namespace slm::sca
