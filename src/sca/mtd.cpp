#include "sca/mtd.hpp"

namespace slm::sca {

MtdResult estimate_mtd(const std::vector<CpaProgressPoint>& progress) {
  MtdResult result;
  if (progress.empty()) return result;

  const auto& last = progress.back();
  result.final_margin = last.correct_corr - last.best_wrong_corr;
  if (last.correct_rank != 0) return result;  // never stably disclosed

  // Walk backwards: find the earliest suffix where rank stays 0.
  std::size_t first_stable = progress.size() - 1;
  for (std::size_t i = progress.size(); i-- > 0;) {
    if (progress[i].correct_rank == 0) {
      first_stable = i;
    } else {
      break;
    }
  }
  result.traces = progress[first_stable].traces;
  return result;
}

double winner_margin(const CpaProgressPoint& p) {
  const double best = p.max_abs_corr[p.best_guess];
  double second = 0.0;
  for (std::size_t k = 0; k < p.max_abs_corr.size(); ++k) {
    if (k != p.best_guess && p.max_abs_corr[k] > second) {
      second = p.max_abs_corr[k];
    }
  }
  return best - second;
}

}  // namespace slm::sca
