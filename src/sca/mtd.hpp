// Measurements-to-disclosure estimation from CPA progress checkpoints:
// the earliest checkpoint after which the correct guess never loses the
// lead again. This matches how the paper reads its Fig. 9b-18b progress
// plots ("the correct key is revealed after about N traces").
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sca/cpa.hpp"

namespace slm::sca {

struct MtdResult {
  /// Traces at the stable-disclosure checkpoint; nullopt if the correct
  /// guess is not leading at the final checkpoint.
  std::optional<std::size_t> traces;

  /// Margin (correct - best wrong correlation) at the final checkpoint.
  double final_margin = 0.0;

  bool disclosed() const { return traces.has_value(); }
};

MtdResult estimate_mtd(const std::vector<CpaProgressPoint>& progress);

/// Attacker-observable winner margin of a progress point: |r| of the
/// leading guess minus |r| of the runner-up. Unlike best_wrong_corr this
/// needs no knowledge of the correct key, so full-key early exit (and
/// store replay, which must reproduce its decisions) can key off it.
double winner_margin(const CpaProgressPoint& p);

}  // namespace slm::sca
