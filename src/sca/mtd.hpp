// Measurements-to-disclosure estimation from CPA progress checkpoints:
// the earliest checkpoint after which the correct guess never loses the
// lead again. This matches how the paper reads its Fig. 9b-18b progress
// plots ("the correct key is revealed after about N traces").
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sca/cpa.hpp"

namespace slm::sca {

struct MtdResult {
  /// Traces at the stable-disclosure checkpoint; nullopt if the correct
  /// guess is not leading at the final checkpoint.
  std::optional<std::size_t> traces;

  /// Margin (correct - best wrong correlation) at the final checkpoint.
  double final_margin = 0.0;

  bool disclosed() const { return traces.has_value(); }
};

MtdResult estimate_mtd(const std::vector<CpaProgressPoint>& progress);

}  // namespace slm::sca
