#include "sca/tvla.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace slm::sca {

WelchTTest::WelchTTest(std::size_t sample_count)
    : fixed_(sample_count), random_(sample_count) {
  SLM_REQUIRE(sample_count > 0, "WelchTTest: zero samples");
}

void WelchTTest::add(bool fixed_population,
                     const std::vector<double>& samples) {
  SLM_REQUIRE(samples.size() == fixed_.size(),
              "WelchTTest::add: sample count mismatch");
  auto& pop = fixed_population ? fixed_ : random_;
  for (std::size_t s = 0; s < samples.size(); ++s) pop[s].add(samples[s]);
}

std::size_t WelchTTest::fixed_traces() const { return fixed_[0].count(); }
std::size_t WelchTTest::random_traces() const { return random_[0].count(); }

double WelchTTest::t_statistic(std::size_t sample) const {
  SLM_REQUIRE(sample < fixed_.size(), "WelchTTest: sample out of range");
  const auto& a = fixed_[sample];
  const auto& b = random_[sample];
  if (a.count() < 2 || b.count() < 2) return 0.0;
  const double var_term =
      a.sample_variance() / static_cast<double>(a.count()) +
      b.sample_variance() / static_cast<double>(b.count());
  if (var_term <= 0.0) return 0.0;
  return (a.mean() - b.mean()) / std::sqrt(var_term);
}

double WelchTTest::max_abs_t() const {
  double best = 0.0;
  for (std::size_t s = 0; s < fixed_.size(); ++s) {
    best = std::max(best, std::abs(t_statistic(s)));
  }
  return best;
}

}  // namespace slm::sca
