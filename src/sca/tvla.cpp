#include "sca/tvla.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sca/fold_kernels.hpp"

namespace slm::sca {

WelchTTest::WelchTTest(std::size_t sample_count)
    : samples_(sample_count),
      fixed_sum_(sample_count, 0),
      fixed_sumsq_(sample_count, 0),
      random_sum_(sample_count, 0),
      random_sumsq_(sample_count, 0) {
  SLM_REQUIRE(sample_count > 0, "WelchTTest: zero samples");
}

void WelchTTest::add(bool fixed_population,
                     const std::vector<double>& samples) {
  SLM_REQUIRE(samples.size() == samples_,
              "WelchTTest::add: sample count mismatch");
  add(fixed_population, samples.data());
}

void WelchTTest::add(bool fixed_population, const double* samples) {
  require_fold_budget(fixed_n_ + random_n_ + 1, "WelchTTest");
  const FoldKernels& k = active_kernels();
  thread_local std::vector<std::int64_t> yi;
  thread_local std::vector<std::int64_t> yyi;
  if (yi.size() < samples_) {
    yi.resize(samples_);
    yyi.resize(samples_);
  }
  k.stage_i64(samples, samples_, yi.data(), yyi.data());
  if (fixed_population) {
    ++fixed_n_;
    k.add2_i64(fixed_sum_.data(), fixed_sumsq_.data(), yi.data(), yyi.data(),
               samples_);
  } else {
    ++random_n_;
    k.add2_i64(random_sum_.data(), random_sumsq_.data(), yi.data(),
               yyi.data(), samples_);
  }
}

double WelchTTest::t_statistic(std::size_t sample) const {
  SLM_REQUIRE(sample < samples_, "WelchTTest: sample out of range");
  if (fixed_n_ < 2 || random_n_ < 2) return 0.0;
  // Exact integer sums -> double read-out. sample_variance from the sum
  // and sum of squares: (Sq - S^2/n) / (n - 1), with the S^2/n product
  // taken in double (S^2 can exceed int64, the quotient is fine).
  const double na = static_cast<double>(fixed_n_);
  const double nb = static_cast<double>(random_n_);
  const double sa = static_cast<double>(fixed_sum_[sample]);
  const double sb = static_cast<double>(random_sum_[sample]);
  const double qa = static_cast<double>(fixed_sumsq_[sample]);
  const double qb = static_cast<double>(random_sumsq_[sample]);
  const double var_a = std::max(0.0, (qa - sa * (sa / na)) / (na - 1.0));
  const double var_b = std::max(0.0, (qb - sb * (sb / nb)) / (nb - 1.0));
  const double var_term = var_a / na + var_b / nb;
  if (var_term <= 0.0) return 0.0;
  return (sa / na - sb / nb) / std::sqrt(var_term);
}

double WelchTTest::max_abs_t() const {
  double best = 0.0;
  for (std::size_t s = 0; s < samples_; ++s) {
    best = std::max(best, std::abs(t_statistic(s)));
  }
  return best;
}

}  // namespace slm::sca
