#include "bitstream/checker.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <unordered_set>

#include "timing/sta.hpp"

namespace slm::bitstream {

using netlist::Gate;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetId;

const char* check_kind_name(CheckKind kind) {
  switch (kind) {
    case CheckKind::kCombinationalLoop:
      return "combinational-loop";
    case CheckKind::kClockAsData:
      return "clock-as-data";
    case CheckKind::kDelayLinePattern:
      return "delay-line-pattern";
    case CheckKind::kStrictTiming:
      return "strict-timing";
  }
  return "?";
}

bool CheckReport::flagged(CheckKind kind) const {
  return std::any_of(findings.begin(), findings.end(),
                     [kind](const Finding& f) { return f.kind == kind; });
}

std::string CheckReport::summary() const {
  if (findings.empty()) return "PASS (no suspicious structures)";
  std::ostringstream os;
  os << "REJECT (" << findings.size() << " finding"
     << (findings.size() == 1 ? "" : "s") << "):";
  for (const auto& f : findings) {
    os << "\n  [" << check_kind_name(f.kind) << "] " << f.detail;
  }
  return os.str();
}

CheckReport BitstreamChecker::check(const Netlist& nl) const {
  CheckReport report;
  if (opt_.check_loops) check_loops(nl, report);
  if (opt_.check_clock_as_data) check_clock_as_data(nl, report);
  if (opt_.check_delay_lines) check_delay_lines(nl, report);
  if (opt_.operating_clock_period_ns > 0.0 &&
      !nl.has_combinational_cycle()) {
    check_strict_timing(nl, report);
  }
  return report;
}

void BitstreamChecker::check_loops(const Netlist& nl,
                                   CheckReport& report) const {
  const auto cyclic = nl.gates_on_cycles();
  if (cyclic.empty()) return;
  Finding f;
  f.kind = CheckKind::kCombinationalLoop;
  f.nets = cyclic;
  f.detail = std::to_string(cyclic.size()) +
             " gates form combinational cycles (ring-oscillator pattern)";
  report.findings.push_back(std::move(f));
}

void BitstreamChecker::check_clock_as_data(const Netlist& nl,
                                           CheckReport& report) const {
  // Forward reachability from clock-marked inputs through gate data pins.
  std::vector<std::vector<NetId>> fanout(nl.gate_count());
  for (NetId id = 0; id < nl.gate_count(); ++id) {
    for (NetId f : nl.gate(id).fanin) fanout[f].push_back(id);
  }
  std::vector<bool> tainted(nl.gate_count(), false);
  std::queue<NetId> queue;
  for (NetId in : nl.inputs()) {
    if (nl.gate(in).is_clock) {
      tainted[in] = true;
      queue.push(in);
    }
  }
  std::size_t tainted_logic = 0;
  while (!queue.empty()) {
    const NetId id = queue.front();
    queue.pop();
    for (NetId succ : fanout[id]) {
      if (!tainted[succ]) {
        tainted[succ] = true;
        ++tainted_logic;
        queue.push(succ);
      }
    }
  }
  if (tainted_logic == 0) return;

  Finding f;
  f.kind = CheckKind::kClockAsData;
  for (NetId id = 0; id < nl.gate_count(); ++id) {
    if (tainted[id] && !nl.gate(id).is_clock) f.nets.push_back(id);
  }
  f.detail = "clock net drives " + std::to_string(tainted_logic) +
             " logic data pins (TDC launch pattern)";
  report.findings.push_back(std::move(f));
}

void BitstreamChecker::check_delay_lines(const Netlist& nl,
                                         CheckReport& report) const {
  if (nl.has_combinational_cycle()) return;  // loop check already fired

  // Tapped-chain scan: walk maximal chains of buf/not gates and count how
  // many stages feed capture endpoints.
  std::unordered_set<NetId> endpoint_nets;
  for (const auto& port : nl.outputs()) endpoint_nets.insert(port.net);

  auto is_chain_gate = [&](NetId id) {
    const GateType t = nl.gate(id).type;
    return t == GateType::kBuf || t == GateType::kNot;
  };

  // Chain successor per gate: the unique buf/not gate it drives.
  std::vector<NetId> chain_succ(nl.gate_count(), netlist::kInvalidNet);
  for (NetId id = 0; id < nl.gate_count(); ++id) {
    if (!is_chain_gate(id)) continue;
    const NetId drv = nl.gate(id).fanin[0];
    if (chain_succ[drv] == netlist::kInvalidNet) {
      chain_succ[drv] = id;
    }
  }

  // A chain head is a chain gate whose driver is not a chain gate.
  std::vector<bool> visited(nl.gate_count(), false);
  for (NetId id = 0; id < nl.gate_count(); ++id) {
    if (!is_chain_gate(id) || visited[id]) continue;
    if (is_chain_gate(nl.gate(id).fanin[0])) continue;  // not a head

    std::vector<NetId> chain;
    std::size_t taps = 0;
    for (NetId cur = id; cur != netlist::kInvalidNet; cur = chain_succ[cur]) {
      if (visited[cur]) break;
      visited[cur] = true;
      chain.push_back(cur);
      if (endpoint_nets.count(cur) > 0) ++taps;
    }

    if (chain.size() >= opt_.delay_line_min_stages &&
        static_cast<double>(taps) >=
            opt_.delay_line_min_tap_fraction *
                static_cast<double>(chain.size())) {
      Finding f;
      f.kind = CheckKind::kDelayLinePattern;
      f.nets = chain;
      f.detail = "tapped buffer chain of " + std::to_string(chain.size()) +
                 " stages with " + std::to_string(taps) +
                 " capture taps (TDC delay-line pattern)";
      report.findings.push_back(std::move(f));
    }
  }
}

void BitstreamChecker::check_strict_timing(const Netlist& nl,
                                           CheckReport& report) const {
  timing::Sta sta(nl);
  const auto slacks = sta.endpoint_slacks(opt_.operating_clock_period_ns,
                                          opt_.setup_ns);
  std::unordered_set<std::size_t> false_paths(
      opt_.false_path_endpoints.begin(), opt_.false_path_endpoints.end());

  std::size_t failing = 0;
  double worst = 0.0;
  for (std::size_t i = 0; i < slacks.size(); ++i) {
    if (false_paths.count(i) > 0) continue;
    if (slacks[i] < 0.0) {
      ++failing;
      worst = std::min(worst, slacks[i]);
    }
  }
  if (failing == 0) return;

  Finding f;
  f.kind = CheckKind::kStrictTiming;
  f.detail = std::to_string(failing) +
             " endpoints violate the operating clock (worst slack " +
             std::to_string(worst) + " ns) - potential timing-misuse sensor";
  report.findings.push_back(std::move(f));
}

}  // namespace slm::bitstream
