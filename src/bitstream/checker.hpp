// Bitstream/netlist security checker, modelling the defences of Krautter
// et al. (TRETS'19) and FPGADefender (TRETS'20) that the paper's attack
// is designed to slip past:
//
//   1. combinational-loop scan        -> catches ring oscillators
//   2. clock-as-data scan             -> catches classic TDCs
//   3. delay-line pattern scan        -> catches TDC-style tapped chains
//   4. strict timing check (optional) -> the only check that would catch
//      the benign-circuit misuse, by refusing any clock faster than STA
//      closes; the paper's Discussion argues it is impractical because
//      real designs are full of intentional false paths.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace slm::bitstream {

enum class CheckKind {
  kCombinationalLoop,
  kClockAsData,
  kDelayLinePattern,
  kStrictTiming,
};

const char* check_kind_name(CheckKind kind);

struct Finding {
  CheckKind kind;
  std::string detail;
  std::vector<netlist::NetId> nets;  ///< implicated gates/nets
};

struct CheckerOptions {
  bool check_loops = true;
  bool check_clock_as_data = true;
  bool check_delay_lines = true;

  /// Minimum tapped buffer/inverter chain length reported as a TDC-style
  /// delay line.
  std::size_t delay_line_min_stages = 16;

  /// Minimum fraction of chain stages that must feed capture endpoints.
  double delay_line_min_tap_fraction = 0.5;

  /// Strict timing mode: verify the *operating* clock against STA. 0
  /// disables the check (the realistic default — tenants declare their
  /// own constraints).
  double operating_clock_period_ns = 0.0;
  double setup_ns = 0.05;

  /// Endpoints (by output index) excluded from the strict timing check —
  /// models user-supplied false-path constraints, which the Discussion
  /// notes can hide sensor endpoints.
  std::vector<std::size_t> false_path_endpoints;
};

struct CheckReport {
  std::vector<Finding> findings;

  bool passed() const { return findings.empty(); }
  bool flagged(CheckKind kind) const;
  std::string summary() const;
};

class BitstreamChecker {
 public:
  explicit BitstreamChecker(CheckerOptions opt = {}) : opt_(std::move(opt)) {}

  CheckReport check(const netlist::Netlist& nl) const;

  const CheckerOptions& options() const { return opt_; }

 private:
  void check_loops(const netlist::Netlist& nl, CheckReport& report) const;
  void check_clock_as_data(const netlist::Netlist& nl,
                           CheckReport& report) const;
  void check_delay_lines(const netlist::Netlist& nl,
                         CheckReport& report) const;
  void check_strict_timing(const netlist::Netlist& nl,
                           CheckReport& report) const;

  CheckerOptions opt_;
};

}  // namespace slm::bitstream
