#include "obs/observer.hpp"

#include <cstdlib>

namespace slm::obs {

namespace {
const std::string kNoPath;
}  // namespace

CampaignObserver::CampaignObserver() = default;

CampaignObserver::CampaignObserver(const std::string& jsonl_path)
    : sink_(std::make_unique<JsonlSink>(jsonl_path)) {}

const std::string& CampaignObserver::sink_path() const {
  return sink_ ? sink_->path() : kNoPath;
}

void CampaignObserver::event(const char* name, JsonWriter fields) {
  if (!sink_) return;
  JsonWriter line;
  line.field("ev", name);
  line.field("ts", monotonic_seconds());
  const std::string body = fields.str();
  // Splice the caller's fields into the envelope: {"ev":..,"ts":..,<body>}.
  std::string out = line.str();
  if (body.size() > 2) {
    out.pop_back();  // '}'
    out += ',';
    out += body.substr(1);  // skip '{'
  }
  sink_->write_line(out);
}

CampaignObserver::Span::Span(CampaignObserver* observer, std::string name)
    : observer_(observer),
      name_(std::move(name)),
      start_(monotonic_seconds()) {}

CampaignObserver::Span::Span(Span&& other) noexcept
    : observer_(other.observer_),
      name_(std::move(other.name_)),
      start_(other.start_) {
  other.observer_ = nullptr;
}

double CampaignObserver::Span::elapsed_seconds() const {
  return monotonic_seconds() - start_;
}

CampaignObserver::Span::~Span() {
  if (observer_ == nullptr) return;
  const double seconds = elapsed_seconds();
  observer_->metrics().observe("slm.span." + name_ + "_seconds", seconds);
  JsonWriter fields;
  fields.field("name", name_);
  fields.field("seconds", seconds);
  observer_->event("span", std::move(fields));
}

void CampaignObserver::write_manifest(JsonWriter summary_fields) {
  metrics_.set("slm.run.manifest_written", 1.0);
  summary_fields.raw("metrics", metrics_.to_json());
  event("run_end", std::move(summary_fields));
}

std::unique_ptr<CampaignObserver> observer_from_env() {
  if (const char* path = std::getenv("SLM_TRACE")) {
    if (path[0] != '\0') return std::make_unique<CampaignObserver>(path);
  }
  return nullptr;
}

}  // namespace slm::obs
