#include "obs/jsonl.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace slm::obs {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += escape(k);
  body_ += "\":";
}

JsonWriter& JsonWriter::field(std::string_view k, std::string_view v) {
  key(k);
  body_ += '"';
  body_ += escape(v);
  body_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, const char* v) {
  return field(k, std::string_view(v));
}

JsonWriter& JsonWriter::field(std::string_view k, double v) {
  key(k);
  if (std::isfinite(v)) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    body_ += buf;
  } else {
    body_ += "null";
  }
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::uint64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::int64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, bool v) {
  key(k);
  body_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view k, std::string_view json) {
  key(k);
  body_ += json;
  return *this;
}

JsonlSink::JsonlSink(const std::string& path)
    : path_(path), out_(path, std::ios::app) {
  if (!out_) throw Error("JsonlSink: cannot open '" + path + "' for append");
}

void JsonlSink::write(const JsonWriter& event) { write_line(event.str()); }

void JsonlSink::write_line(const std::string& json) {
  std::lock_guard<std::mutex> g(m_);
  out_ << json << '\n';
  out_.flush();
  ++lines_;
}

std::optional<double> last_event_value(const std::string& path,
                                       std::string_view event,
                                       std::string_view field) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  const std::string ev_needle = "\"ev\":\"" + std::string(event) + "\"";
  const std::string field_needle = "\"" + std::string(field) + "\":";
  std::optional<double> last;
  std::string line;
  while (std::getline(is, line)) {
    if (line.find(ev_needle) == std::string::npos) continue;
    const std::size_t pos = line.find(field_needle);
    if (pos == std::string::npos) continue;
    const char* start = line.c_str() + pos + field_needle.size();
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end != start) last = v;
  }
  return last;
}

}  // namespace slm::obs
