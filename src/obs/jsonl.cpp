#include "obs/jsonl.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace slm::obs {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += escape(k);
  body_ += "\":";
}

JsonWriter& JsonWriter::field(std::string_view k, std::string_view v) {
  key(k);
  body_ += '"';
  body_ += escape(v);
  body_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, const char* v) {
  return field(k, std::string_view(v));
}

JsonWriter& JsonWriter::field(std::string_view k, double v) {
  key(k);
  if (std::isfinite(v)) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    body_ += buf;
  } else {
    body_ += "null";
  }
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::uint64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::int64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, bool v) {
  key(k);
  body_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view k, std::string_view json) {
  key(k);
  body_ += json;
  return *this;
}

JsonlSink::JsonlSink(const std::string& path)
    : path_(path), out_(path, std::ios::app) {
  if (!out_) throw Error("JsonlSink: cannot open '" + path + "' for append");
}

void JsonlSink::write(const JsonWriter& event) { write_line(event.str()); }

void JsonlSink::write_line(const std::string& json) {
  std::lock_guard<std::mutex> g(m_);
  out_ << json << '\n';
  out_.flush();
  ++lines_;
}

namespace {

[[noreturn]] void parse_fail(std::string_view what, std::size_t at) {
  throw Error("FlatJson: " + std::string(what) + " at offset " +
              std::to_string(at));
}

struct Cursor {
  std::string_view s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool done() const { return i >= s.size(); }
  char peek() const { return s[i]; }
  void expect(char c, std::string_view what) {
    if (done() || s[i] != c) parse_fail(what, i);
    ++i;
  }
};

// Decoded contents of a quoted string; cursor enters at the opening
// quote and leaves past the closing one.
std::string parse_string(Cursor& c) {
  c.expect('"', "expected '\"'");
  std::string out;
  while (true) {
    if (c.done()) parse_fail("unterminated string", c.i);
    const char ch = c.s[c.i++];
    if (ch == '"') return out;
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (c.done()) parse_fail("dangling escape", c.i);
    const char esc = c.s[c.i++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (c.i + 4 > c.s.size()) parse_fail("truncated \\u escape", c.i);
        unsigned v = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = c.s[c.i++];
          v <<= 4;
          if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
          else parse_fail("bad \\u escape", c.i - 1);
        }
        // JsonWriter only emits \u for control bytes; decode the ASCII
        // range and substitute '?' for anything wider rather than
        // growing a UTF-8 encoder nothing writes.
        out += v < 0x80 ? static_cast<char>(v) : '?';
        break;
      }
      default: parse_fail("unknown escape", c.i - 1);
    }
  }
}

// Raw text of one value (string/number/literal/nested), cursor past it.
std::string parse_raw_value(Cursor& c) {
  const std::size_t start = c.i;
  if (c.done()) parse_fail("expected value", c.i);
  const char first = c.peek();
  if (first == '"') {
    parse_string(c);  // validates escapes; raw text keeps the quotes
  } else if (first == '{' || first == '[') {
    // Balanced scan, string-aware, so nested structure survives as-is.
    int depth = 0;
    bool in_str = false;
    while (!c.done()) {
      const char ch = c.s[c.i++];
      if (in_str) {
        if (ch == '\\') { if (!c.done()) ++c.i; }
        else if (ch == '"') in_str = false;
      } else if (ch == '"') {
        in_str = true;
      } else if (ch == '{' || ch == '[') {
        ++depth;
      } else if (ch == '}' || ch == ']') {
        if (--depth == 0) break;
      }
    }
    if (depth != 0) parse_fail("unbalanced nesting", start);
  } else {
    while (!c.done()) {
      const char ch = c.peek();
      if (ch == ',' || ch == '}' || ch == ' ' || ch == '\t' || ch == '\n' ||
          ch == '\r') {
        break;
      }
      ++c.i;
    }
    if (c.i == start) parse_fail("expected value", start);
  }
  return std::string(c.s.substr(start, c.i - start));
}

}  // namespace

FlatJson FlatJson::parse(std::string_view text) {
  Cursor c{text};
  c.skip_ws();
  c.expect('{', "expected '{'");
  FlatJson out;
  c.skip_ws();
  if (!c.done() && c.peek() == '}') {
    ++c.i;
  } else {
    while (true) {
      c.skip_ws();
      std::string key = parse_string(c);
      c.skip_ws();
      c.expect(':', "expected ':'");
      c.skip_ws();
      std::string value = parse_raw_value(c);
      // Last duplicate wins: drop any earlier occurrence of the key.
      for (auto it = out.fields_.begin(); it != out.fields_.end(); ++it) {
        if (it->first == key) {
          out.fields_.erase(it);
          break;
        }
      }
      out.fields_.emplace_back(std::move(key), std::move(value));
      c.skip_ws();
      if (c.done()) parse_fail("unterminated object", c.i);
      if (c.peek() == ',') {
        ++c.i;
        continue;
      }
      c.expect('}', "expected ',' or '}'");
      break;
    }
  }
  c.skip_ws();
  if (!c.done()) parse_fail("trailing content", c.i);
  return out;
}

const std::string* FlatJson::raw_value(std::string_view key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool FlatJson::has(std::string_view key) const {
  return raw_value(key) != nullptr;
}

std::optional<std::string> FlatJson::string_field(std::string_view key) const {
  const std::string* raw = raw_value(key);
  if (raw == nullptr || raw->empty() || (*raw)[0] != '"') return std::nullopt;
  Cursor c{*raw};
  return parse_string(c);
}

std::optional<double> FlatJson::number_field(std::string_view key) const {
  const std::string* raw = raw_value(key);
  if (raw == nullptr || raw->empty()) return std::nullopt;
  const char first = (*raw)[0];
  if (first != '-' && (first < '0' || first > '9')) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(raw->c_str(), &end);
  if (end != raw->c_str() + raw->size()) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> FlatJson::uint_field(std::string_view key) const {
  const std::optional<double> v = number_field(key);
  if (!v || *v < 0.0 || *v != std::floor(*v) ||
      *v > 18446744073709549568.0 /* largest double below 2^64 */) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(*v);
}

std::optional<bool> FlatJson::bool_field(std::string_view key) const {
  const std::string* raw = raw_value(key);
  if (raw == nullptr) return std::nullopt;
  if (*raw == "true") return true;
  if (*raw == "false") return false;
  return std::nullopt;
}

std::optional<double> last_event_value(const std::string& path,
                                       std::string_view event,
                                       std::string_view field) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  const std::string ev_needle = "\"ev\":\"" + std::string(event) + "\"";
  const std::string field_needle = "\"" + std::string(field) + "\":";
  std::optional<double> last;
  std::string line;
  while (std::getline(is, line)) {
    if (line.find(ev_needle) == std::string::npos) continue;
    const std::size_t pos = line.find(field_needle);
    if (pos == std::string::npos) continue;
    const char* start = line.c_str() + pos + field_needle.size();
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end != start) last = v;
  }
  return last;
}

}  // namespace slm::obs
