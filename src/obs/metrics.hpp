// Campaign metrics: counters, gauges, and log-linear histograms with
// quantile summaries — the numbers behind the JSONL event stream and the
// BENCH_*.json metrics block.
//
// Design constraints (see docs/OBSERVABILITY.md):
//   * zero overhead when disabled: the registry only exists when an
//     observer is attached; campaign hot loops never touch it otherwise;
//   * cheap when enabled: one mutex-guarded hash lookup per update, and
//     the sharded campaign batches per-shard totals so workers touch the
//     registry only at checkpoint boundaries;
//   * bounded memory: histograms bucket on a log-linear grid (16 sub-
//     buckets per power of two) instead of storing samples, so a
//     500k-trace campaign's per-trace timer stays a few KiB.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace slm::obs {

/// Summary of a histogram at read time. Quantiles are bucket lower
/// edges of the log-linear grid (<= ~4.5% relative error by
/// construction); count/sum/min/max are exact.
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/// Log-linear bucket histogram for non-negative values (timer seconds,
/// byte counts). Values spanning 2^-31 .. 2^32 land in dedicated
/// buckets; anything outside clamps to the edge buckets.
class Histogram {
 public:
  Histogram();

  void record(double value);
  HistogramStats stats() const;
  std::uint64_t count() const { return count_; }

  /// Value at quantile q in [0, 1]: lower edge of the bucket holding the
  /// q-th sample (0 if empty).
  double quantile(double q) const;

 private:
  static constexpr int kSubBits = 4;               // 16 sub-buckets / octave
  static constexpr int kMinExp = -31;              // 2^-31 ~ 0.5 ns
  static constexpr int kMaxExp = 32;               // 2^32 s ~ forever
  static constexpr int kBuckets =
      (kMaxExp - kMinExp) * (1 << kSubBits) + 2;   // + zero & overflow

  static int bucket_of(double v);
  static double bucket_lower_edge(int idx);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metrics, one namespace per campaign run. Thread-safe: sharded
/// campaigns update it from worker threads at checkpoint boundaries.
/// Metric names follow the `slm.<area>.<name>` convention catalogued in
/// docs/OBSERVABILITY.md.
class MetricsRegistry {
 public:
  /// Monotonic counter (default delta 1).
  void add(const std::string& name, double delta = 1.0);

  /// Last-write-wins gauge.
  void set(const std::string& name, double value);

  /// Histogram / timer observation (seconds, bytes, ...).
  void observe(const std::string& name, double value);

  double counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  HistogramStats histogram(const std::string& name) const;

  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// The whole registry as one JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,...}}}
  std::string to_json() const;

 private:
  mutable std::mutex m_;
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// RAII timer: records elapsed seconds into a registry histogram on
/// destruction. Null registry = inert (the zero-overhead-when-disabled
/// idiom used by core).
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since construction (also what gets recorded).
  double elapsed_seconds() const;

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::uint64_t start_ns_;
};

/// Monotonic wall clock in seconds (steady_clock), shared by timers and
/// the JSONL event timestamps.
double monotonic_seconds();

}  // namespace slm::obs
