#include "obs/metrics.hpp"

#include <chrono>
#include <cmath>
#include <sstream>

namespace slm::obs {

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Histogram::Histogram() : buckets_(kBuckets, 0) {}

int Histogram::bucket_of(double v) {
  if (!(v > 0.0)) return 0;  // zero, negatives, NaN -> zero bucket
  int exp = 0;
  const double mant = std::frexp(v, &exp);  // v = mant * 2^exp, mant in [0.5,1)
  if (exp <= kMinExp) return 1;
  if (exp > kMaxExp) return kBuckets - 1;
  // Sub-bucket from the mantissa: [0.5, 1) split into 2^kSubBits slots.
  const int sub = static_cast<int>((mant - 0.5) * 2.0 * (1 << kSubBits));
  return 1 + (exp - 1 - kMinExp) * (1 << kSubBits) + sub;
}

double Histogram::bucket_lower_edge(int idx) {
  if (idx <= 0) return 0.0;
  if (idx >= kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  const int rel = idx - 1;
  const int exp = kMinExp + rel / (1 << kSubBits);
  const int sub = rel % (1 << kSubBits);
  const double mant = 0.5 + 0.5 * static_cast<double>(sub) / (1 << kSubBits);
  return std::ldexp(mant, exp + 1);
}

void Histogram::record(double value) {
  buckets_[static_cast<std::size_t>(bucket_of(value))] += 1;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based; ceil so p100 = max bucket.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= target) return bucket_lower_edge(i);
  }
  return max_;
}

HistogramStats Histogram::stats() const {
  HistogramStats s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

void MetricsRegistry::add(const std::string& name, double delta) {
  std::lock_guard<std::mutex> g(m_);
  counters_[name] += delta;
}

void MetricsRegistry::set(const std::string& name, double value) {
  std::lock_guard<std::mutex> g(m_);
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> g(m_);
  histograms_[name].record(value);
}

double MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> g(m_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> g(m_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramStats MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> g(m_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramStats{} : it->second.stats();
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::lock_guard<std::mutex> g(m_);
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [k, v] : counters_) out.push_back(k);
  return out;
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  std::lock_guard<std::mutex> g(m_);
  std::vector<std::string> out;
  out.reserve(gauges_.size());
  for (const auto& [k, v] : gauges_) out.push_back(k);
  return out;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard<std::mutex> g(m_);
  std::vector<std::string> out;
  out.reserve(histograms_.size());
  for (const auto& [k, v] : histograms_) out.push_back(k);
  return out;
}

namespace {

void append_number(std::ostringstream& os, double v) {
  // JSON has no inf/nan; clamp to null which every consumer tolerates.
  if (std::isfinite(v)) {
    os.precision(12);
    os << v;
  } else {
    os << "null";
  }
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> g(m_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : counters_) {
    os << (first ? "" : ",") << "\"" << k << "\":";
    append_number(os, v);
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : gauges_) {
    os << (first ? "" : ",") << "\"" << k << "\":";
    append_number(os, v);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [k, h] : histograms_) {
    const HistogramStats s = h.stats();
    os << (first ? "" : ",") << "\"" << k << "\":{\"count\":" << s.count
       << ",\"sum\":";
    append_number(os, s.sum);
    os << ",\"min\":";
    append_number(os, s.min);
    os << ",\"max\":";
    append_number(os, s.max);
    os << ",\"p50\":";
    append_number(os, s.p50);
    os << ",\"p95\":";
    append_number(os, s.p95);
    os << ",\"p99\":";
    append_number(os, s.p99);
    os << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

ScopedTimer::ScopedTimer(MetricsRegistry* registry, std::string name)
    : registry_(registry),
      name_(std::move(name)),
      start_ns_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())) {}

double ScopedTimer::elapsed_seconds() const {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return static_cast<double>(now - start_ns_) * 1e-9;
}

ScopedTimer::~ScopedTimer() {
  if (registry_ != nullptr) registry_->observe(name_, elapsed_seconds());
}

}  // namespace slm::obs
