// Minimal JSON-object builder and append-only JSONL sink.
//
// Every campaign event is one self-contained JSON object per line
// (JSON Lines), so `jq`, `grep`, or a tail -f dashboard can consume a
// run in flight. The schema is catalogued in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace slm::obs {

/// Builds one flat-or-nested JSON object. Append-only; the caller is
/// responsible for key uniqueness (events use fixed schemas).
class JsonWriter {
 public:
  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value);
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, std::int64_t value);
  JsonWriter& field(std::string_view key, bool value);
  /// Pre-serialized JSON (nested object/array) — inserted verbatim.
  JsonWriter& raw(std::string_view key, std::string_view json);

  /// The finished object, e.g. {"a":1,"b":"x"}.
  std::string str() const { return body_.empty() ? "{}" : "{" + body_ + "}"; }

  static std::string escape(std::string_view s);

 private:
  void key(std::string_view k);
  std::string body_;
};

/// Append-only JSONL file sink; thread-safe, line-buffered (flushes per
/// event so a killed campaign's stream is still readable up to the last
/// checkpoint — the durability counterpart of the snapshot files).
class JsonlSink {
 public:
  /// Opens `path` for append. Throws slm::Error if the file cannot be
  /// opened.
  explicit JsonlSink(const std::string& path);

  /// Writes one JSON object as a line.
  void write(const JsonWriter& event);
  void write_line(const std::string& json);

  const std::string& path() const { return path_; }
  std::size_t lines_written() const { return lines_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::mutex m_;
  std::size_t lines_ = 0;
};

/// Scan a JSONL event stream for the LAST event named `event` and return
/// its numeric `field` value, or nullopt when the file is missing or no
/// such event/field exists yet. A line-oriented text scan, not a JSON
/// parser: events use fixed flat schemas, so matching the literal
/// `"ev":"<event>"` and `"<field>":` substrings is exact. Safe to call
/// on a file another process is appending to (the fabric coordinator
/// polls worker streams this way) — a torn final line simply doesn't
/// match yet.
std::optional<double> last_event_value(const std::string& path,
                                       std::string_view event,
                                       std::string_view field);

}  // namespace slm::obs
