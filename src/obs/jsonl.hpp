// Minimal JSON-object builder and append-only JSONL sink.
//
// Every campaign event is one self-contained JSON object per line
// (JSON Lines), so `jq`, `grep`, or a tail -f dashboard can consume a
// run in flight. The schema is catalogued in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace slm::obs {

/// Builds one flat-or-nested JSON object. Append-only; the caller is
/// responsible for key uniqueness (events use fixed schemas).
class JsonWriter {
 public:
  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value);
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, std::int64_t value);
  JsonWriter& field(std::string_view key, bool value);
  /// Pre-serialized JSON (nested object/array) — inserted verbatim.
  JsonWriter& raw(std::string_view key, std::string_view json);

  /// The finished object, e.g. {"a":1,"b":"x"}.
  std::string str() const { return body_.empty() ? "{}" : "{" + body_ + "}"; }

  static std::string escape(std::string_view s);

 private:
  void key(std::string_view k);
  std::string body_;
};

/// Append-only JSONL file sink; thread-safe, line-buffered (flushes per
/// event so a killed campaign's stream is still readable up to the last
/// checkpoint — the durability counterpart of the snapshot files).
class JsonlSink {
 public:
  /// Opens `path` for append. Throws slm::Error if the file cannot be
  /// opened.
  explicit JsonlSink(const std::string& path);

  /// Writes one JSON object as a line.
  void write(const JsonWriter& event);
  void write_line(const std::string& json);

  const std::string& path() const { return path_; }
  std::size_t lines_written() const { return lines_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::mutex m_;
  std::size_t lines_ = 0;
};

/// Parsed view of ONE JSON object — the inverse of JsonWriter, sized for
/// the flat schemas this codebase writes (job files, JSONL events).
/// Top-level values may be strings (escapes decoded), numbers, booleans,
/// or null; nested objects/arrays are tolerated and kept as raw JSON
/// text. Duplicate keys keep the LAST occurrence, like most readers.
class FlatJson {
 public:
  /// Parse one complete JSON object (leading/trailing whitespace ok).
  /// Throws slm::Error naming the offending byte offset on malformed
  /// input — callers decide whether that is fatal (a job file) or just
  /// a torn line to skip (tailing a live JSONL stream).
  static FlatJson parse(std::string_view text);

  bool has(std::string_view key) const;

  /// Typed accessors: nullopt when the key is absent OR holds a value
  /// of a different type. uint_field additionally rejects negatives and
  /// non-integral numbers.
  std::optional<std::string> string_field(std::string_view key) const;
  std::optional<double> number_field(std::string_view key) const;
  std::optional<std::uint64_t> uint_field(std::string_view key) const;
  std::optional<bool> bool_field(std::string_view key) const;

  /// All fields in document order as {key, raw value text} — strings
  /// still quoted/escaped, nested structures verbatim.
  const std::vector<std::pair<std::string, std::string>>& raw_fields() const {
    return fields_;
  }

 private:
  const std::string* raw_value(std::string_view key) const;
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Scan a JSONL event stream for the LAST event named `event` and return
/// its numeric `field` value, or nullopt when the file is missing or no
/// such event/field exists yet. A line-oriented text scan, not a JSON
/// parser: events use fixed flat schemas, so matching the literal
/// `"ev":"<event>"` and `"<field>":` substrings is exact. Safe to call
/// on a file another process is appending to (the fabric coordinator
/// polls worker streams this way) — a torn final line simply doesn't
/// match yet.
std::optional<double> last_event_value(const std::string& path,
                                       std::string_view event,
                                       std::string_view field);

}  // namespace slm::obs
