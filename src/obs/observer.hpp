// CampaignObserver — the single handle core/{campaign,parallel} talk to.
//
// Owns a MetricsRegistry and an optional JSONL event sink. Core code
// receives it as a nullable pointer on CampaignConfig: a null observer
// is the documented zero-overhead path (the hot loops only ever test
// the pointer), a non-null observer buys structured progress events,
// phase spans, and the machine-readable run manifest.
//
// Event schema and the metric-name catalog live in
// docs/OBSERVABILITY.md; the `docs_references` ctest entry fails the
// build if that page and this code drift apart.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"

namespace slm::obs {

class CampaignObserver {
 public:
  /// Metrics-only observer (no event stream).
  CampaignObserver();

  /// Metrics + JSONL events appended to `jsonl_path`. Throws slm::Error
  /// if the file cannot be opened.
  explicit CampaignObserver(const std::string& jsonl_path);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  bool has_sink() const { return sink_ != nullptr; }
  const std::string& sink_path() const;

  /// Emit one event line (adds "ts" monotonic seconds and "ev" first).
  /// No-op without a sink; metrics still accumulate either way.
  void event(const char* name, JsonWriter fields);

  /// Phase span: times a named phase, records it into the
  /// `slm.span.<name>_seconds` histogram, and emits a "span" event on
  /// close. Move-only RAII.
  class Span {
   public:
    Span(CampaignObserver* observer, std::string name);
    ~Span();
    Span(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span& operator=(Span&&) = delete;

    double elapsed_seconds() const;

   private:
    CampaignObserver* observer_;
    std::string name_;
    double start_;
  };

  Span span(std::string name) { return Span(this, std::move(name)); }

  /// Final machine-readable run record: emits a "run_end" event whose
  /// "metrics" member is the full registry dump.
  void write_manifest(JsonWriter summary_fields);

 private:
  MetricsRegistry metrics_;
  std::unique_ptr<JsonlSink> sink_;
};

/// Observer wired from the environment: SLM_TRACE=<path> attaches a
/// JSONL sink (the CLI flag --trace-out takes precedence); unset returns
/// null — the disabled path. Shared by the CLI and the figure benches.
std::unique_ptr<CampaignObserver> observer_from_env();

}  // namespace slm::obs
