// Gate types and their combinational semantics. The library models the
// post-synthesis structural view an FPGA bitstream checker would recover:
// simple gates with known logic functions and per-instance nominal delays.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace slm::netlist {

/// Combinational primitive types.
///
/// kInput has no fanin; kConst0/kConst1 are tie-offs. Everything else
/// computes a boolean function of its fanins. kMux2 is (sel ? b : a) with
/// fanin order {a, b, sel}.
enum class GateType : std::uint8_t {
  kInput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kMux2,
};

/// Short lower-case mnemonic ("nand", "mux2", ...).
const char* gate_type_name(GateType t);

/// Permitted fanin count. Returns {min, max}; max of 0 means unbounded
/// (AND/OR/NAND/NOR/XOR/XNOR accept >= 2 fanins).
struct Arity {
  std::size_t min;
  std::size_t max;  // 0 = unbounded
};
Arity gate_arity(GateType t);

/// Evaluate the gate function over boolean fanin values.
bool eval_gate(GateType t, const std::vector<bool>& in);

/// Default intrinsic delay (ns) per type, roughly scaled like a 28 nm
/// FPGA LUT/carry implementation. Generators may override per instance.
double default_gate_delay_ns(GateType t);

}  // namespace slm::netlist
