#include "netlist/bench_format.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace slm::netlist {

namespace {

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

struct PendingGate {
  std::string name;
  GateType type;
  std::vector<std::string> fanin_names;
  int line;
};

GateType keyword_to_type(const std::string& kw, int line) {
  const std::string k = upper(kw);
  if (k == "AND") return GateType::kAnd;
  if (k == "OR") return GateType::kOr;
  if (k == "NAND") return GateType::kNand;
  if (k == "NOR") return GateType::kNor;
  if (k == "XOR") return GateType::kXor;
  if (k == "XNOR") return GateType::kXnor;
  if (k == "NOT" || k == "INV") return GateType::kNot;
  if (k == "BUF" || k == "BUFF") return GateType::kBuf;
  throw Error("parse_bench: line " + std::to_string(line) +
              ": unknown gate keyword '" + kw + "'");
}

const char* type_to_keyword(GateType t) {
  switch (t) {
    case GateType::kAnd:
      return "AND";
    case GateType::kOr:
      return "OR";
    case GateType::kNand:
      return "NAND";
    case GateType::kNor:
      return "NOR";
    case GateType::kXor:
      return "XOR";
    case GateType::kXnor:
      return "XNOR";
    case GateType::kNot:
      return "NOT";
    case GateType::kBuf:
      return "BUFF";
    default:
      return nullptr;
  }
}

}  // namespace

Netlist parse_bench(std::istream& is, const std::string& name) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<PendingGate> pending;

  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = strip(line);
    if (line.empty()) continue;

    auto paren_arg = [&](const std::string& s) {
      const auto open = s.find('(');
      const auto close = s.rfind(')');
      SLM_REQUIRE(open != std::string::npos && close != std::string::npos &&
                      close > open,
                  "parse_bench: line " + std::to_string(line_no) +
                      ": malformed parentheses");
      return strip(s.substr(open + 1, close - open - 1));
    };

    const std::string head = upper(line.substr(0, 6));
    if (head.rfind("INPUT", 0) == 0) {
      input_names.push_back(paren_arg(line));
      continue;
    }
    if (head.rfind("OUTPUT", 0) == 0) {
      output_names.push_back(paren_arg(line));
      continue;
    }

    const auto eq = line.find('=');
    SLM_REQUIRE(eq != std::string::npos,
                "parse_bench: line " + std::to_string(line_no) +
                    ": expected INPUT/OUTPUT or assignment");
    PendingGate g;
    g.name = strip(line.substr(0, eq));
    g.line = line_no;
    const std::string rhs = strip(line.substr(eq + 1));
    const auto open = rhs.find('(');
    SLM_REQUIRE(open != std::string::npos,
                "parse_bench: line " + std::to_string(line_no) +
                    ": expected GATE(...)");
    g.type = keyword_to_type(strip(rhs.substr(0, open)), line_no);
    std::string args = paren_arg(rhs);
    std::istringstream as(args);
    std::string tok;
    while (std::getline(as, tok, ',')) {
      tok = strip(tok);
      SLM_REQUIRE(!tok.empty(), "parse_bench: line " +
                                    std::to_string(line_no) +
                                    ": empty fanin name");
      g.fanin_names.push_back(tok);
    }
    pending.push_back(std::move(g));
  }

  // Build: inputs first, then gates in dependency order (iterate until
  // fixed point; the published files are not topologically sorted).
  Netlist nl(name);
  std::unordered_map<std::string, NetId> by_name;
  for (const auto& in : input_names) {
    SLM_REQUIRE(by_name.find(in) == by_name.end(),
                "parse_bench: duplicate signal '" + in + "'");
    Gate g;
    g.type = GateType::kInput;
    g.name = in;
    by_name[in] = nl.add_gate(std::move(g));
  }

  std::vector<bool> placed(pending.size(), false);
  std::size_t remaining = pending.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (placed[i]) continue;
      const auto& pg = pending[i];
      bool ready = true;
      for (const auto& f : pg.fanin_names) {
        if (by_name.find(f) == by_name.end()) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      SLM_REQUIRE(by_name.find(pg.name) == by_name.end(),
                  "parse_bench: duplicate signal '" + pg.name + "'");
      Gate g;
      g.type = pg.type;
      g.name = pg.name;
      g.delay_ns = default_gate_delay_ns(pg.type);
      for (const auto& f : pg.fanin_names) g.fanin.push_back(by_name[f]);
      by_name[pg.name] = nl.add_gate(std::move(g));
      placed[i] = true;
      --remaining;
      progress = true;
    }
    if (!progress) {
      // Either an undefined signal or a combinational loop in the file.
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (!placed[i]) {
          throw Error("parse_bench: line " +
                      std::to_string(pending[i].line) + ": signal '" +
                      pending[i].name +
                      "' has undefined or cyclic fanin");
        }
      }
    }
  }

  for (const auto& out : output_names) {
    const auto it = by_name.find(out);
    SLM_REQUIRE(it != by_name.end(),
                "parse_bench: OUTPUT(" + out + ") never defined");
    nl.add_output(it->second, out);
  }
  return nl;
}

Netlist parse_bench_string(const std::string& text, const std::string& name) {
  std::istringstream is(text);
  return parse_bench(is, name);
}

void write_bench(const Netlist& nl, std::ostream& os) {
  os << "# " << nl.name() << " — written by slm::netlist::write_bench\n";

  // Stable unique names: prefer the gate's own name, fall back to n<id>.
  std::vector<std::string> names(nl.gate_count());
  std::unordered_map<std::string, int> used;
  for (NetId id = 0; id < nl.gate_count(); ++id) {
    std::string base = nl.gate(id).name.empty() ? "n" + std::to_string(id)
                                                : nl.gate(id).name;
    for (char& c : base) {
      if (c == ' ' || c == ',' || c == '(' || c == ')' || c == '=') c = '_';
    }
    if (++used[base] > 1) base += "_" + std::to_string(id);
    names[id] = base;
  }

  for (NetId in : nl.inputs()) {
    os << "INPUT(" << names[in] << ")\n";
  }
  for (const auto& port : nl.outputs()) {
    os << "OUTPUT(" << names[port.net] << ")\n";
  }
  // mux2 and constant gates have no .bench keyword; expand them inline
  // with helper signals (deterministic names derived from the gate's).
  const bool needs_anchor = [&] {
    for (const auto& g : nl.gates()) {
      if (g.type == GateType::kConst0 || g.type == GateType::kConst1) {
        return true;
      }
    }
    return false;
  }();
  SLM_REQUIRE(!needs_anchor || !nl.inputs().empty(),
              "write_bench: constants need at least one input to anchor");
  const std::string anchor =
      nl.inputs().empty() ? std::string() : names[nl.inputs()[0]];

  for (NetId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    switch (g.type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        os << names[id] << "_inv = NOT(" << anchor << ")\n"
           << names[id] << " = AND(" << anchor << ", " << names[id]
           << "_inv)\n";
        break;
      case GateType::kConst1:
        os << names[id] << "_inv = NOT(" << anchor << ")\n"
           << names[id] << " = OR(" << anchor << ", " << names[id]
           << "_inv)\n";
        break;
      case GateType::kMux2: {
        // out = (sel & b) | (!sel & a); fanin order {a, b, sel}.
        const std::string a = names[g.fanin[0]];
        const std::string b = names[g.fanin[1]];
        const std::string sel = names[g.fanin[2]];
        os << names[id] << "_ns = NOT(" << sel << ")\n"
           << names[id] << "_ta = AND(" << a << ", " << names[id] << "_ns)\n"
           << names[id] << "_tb = AND(" << b << ", " << sel << ")\n"
           << names[id] << " = OR(" << names[id] << "_ta, " << names[id]
           << "_tb)\n";
        break;
      }
      default: {
        const char* kw = type_to_keyword(g.type);
        SLM_ASSERT(kw != nullptr, "unhandled gate type in write_bench");
        os << names[id] << " = " << kw << "(";
        for (std::size_t i = 0; i < g.fanin.size(); ++i) {
          os << (i == 0 ? "" : ", ") << names[g.fanin[i]];
        }
        os << ")\n";
        break;
      }
    }
  }
}

}  // namespace slm::netlist
