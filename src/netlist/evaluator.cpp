#include "netlist/evaluator.hpp"

#include "common/error.hpp"

namespace slm::netlist {

Evaluator::Evaluator(const Netlist& nl) : nl_(nl), order_(nl.topo_order()) {}

std::vector<bool> Evaluator::eval_nets(const BitVec& input_values) const {
  SLM_REQUIRE(input_values.size() == nl_.inputs().size(),
              "Evaluator: input width mismatch");
  std::vector<bool> value(nl_.gate_count(), false);

  // Primary inputs first (they appear in order_ too, but need values).
  const auto& inputs = nl_.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    value[inputs[i]] = input_values.get(i);
  }

  std::vector<bool> fanin_vals;
  for (NetId id : order_) {
    const Gate& g = nl_.gate(id);
    switch (g.type) {
      case GateType::kInput:
        break;  // already set
      case GateType::kConst0:
        value[id] = false;
        break;
      case GateType::kConst1:
        value[id] = true;
        break;
      default: {
        fanin_vals.clear();
        for (NetId f : g.fanin) fanin_vals.push_back(value[f]);
        value[id] = eval_gate(g.type, fanin_vals);
        break;
      }
    }
  }
  return value;
}

BitVec Evaluator::eval(const BitVec& input_values) const {
  const auto nets = eval_nets(input_values);
  const auto& outs = nl_.outputs();
  BitVec result(outs.size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    result.set(i, nets[outs[i].net]);
  }
  return result;
}

}  // namespace slm::netlist
