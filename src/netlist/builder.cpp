#include "netlist/builder.hpp"

#include "common/error.hpp"

namespace slm::netlist {

NetId Builder::input(const std::string& name, bool is_clock) {
  Gate g;
  g.type = GateType::kInput;
  g.name = name;
  g.is_clock = is_clock;
  return nl_.add_gate(std::move(g));
}

std::vector<NetId> Builder::input_bus(const std::string& name,
                                      std::size_t width) {
  std::vector<NetId> bus;
  bus.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    bus.push_back(input(name + "[" + std::to_string(i) + "]"));
  }
  return bus;
}

NetId Builder::const0() {
  Gate g;
  g.type = GateType::kConst0;
  g.name = "const0";
  return nl_.add_gate(std::move(g));
}

NetId Builder::const1() {
  Gate g;
  g.type = GateType::kConst1;
  g.name = "const1";
  return nl_.add_gate(std::move(g));
}

NetId Builder::gate(GateType t, std::vector<NetId> fanin,
                    const std::string& name, double delay_ns) {
  Gate g;
  g.type = t;
  g.fanin = std::move(fanin);
  g.name = name;
  g.delay_ns = delay_ns >= 0.0 ? delay_ns : default_gate_delay_ns(t);
  return nl_.add_gate(std::move(g));
}

NetId Builder::buf(NetId a, const std::string& name) {
  return gate(GateType::kBuf, {a}, name);
}
NetId Builder::not_(NetId a, const std::string& name) {
  return gate(GateType::kNot, {a}, name);
}
NetId Builder::and2(NetId a, NetId b, const std::string& name) {
  return gate(GateType::kAnd, {a, b}, name);
}
NetId Builder::or2(NetId a, NetId b, const std::string& name) {
  return gate(GateType::kOr, {a, b}, name);
}
NetId Builder::nand2(NetId a, NetId b, const std::string& name) {
  return gate(GateType::kNand, {a, b}, name);
}
NetId Builder::nor2(NetId a, NetId b, const std::string& name) {
  return gate(GateType::kNor, {a, b}, name);
}
NetId Builder::xor2(NetId a, NetId b, const std::string& name) {
  return gate(GateType::kXor, {a, b}, name);
}
NetId Builder::xnor2(NetId a, NetId b, const std::string& name) {
  return gate(GateType::kXnor, {a, b}, name);
}
NetId Builder::mux2(NetId a, NetId b, NetId sel, const std::string& name) {
  return gate(GateType::kMux2, {a, b, sel}, name);
}

NetId Builder::and_n(std::vector<NetId> in, const std::string& name) {
  SLM_REQUIRE(in.size() >= 2, "and_n: need >= 2 fanins");
  return gate(GateType::kAnd, std::move(in), name);
}

NetId Builder::or_n(std::vector<NetId> in, const std::string& name) {
  SLM_REQUIRE(in.size() >= 2, "or_n: need >= 2 fanins");
  return gate(GateType::kOr, std::move(in), name);
}

void Builder::output(NetId net, const std::string& name) {
  nl_.add_output(net, name);
}

void Builder::output_bus(const std::vector<NetId>& nets,
                         const std::string& name) {
  for (std::size_t i = 0; i < nets.size(); ++i) {
    output(nets[i], name + "[" + std::to_string(i) + "]");
  }
}

Builder::SumCarry Builder::full_adder(NetId a, NetId b, NetId cin,
                                      const std::string& prefix) {
  const NetId axb = xor2(a, b, prefix + ".axb");
  const NetId sum = xor2(axb, cin, prefix + ".sum");
  const NetId ab = and2(a, b, prefix + ".ab");
  const NetId axb_c = and2(axb, cin, prefix + ".axbc");
  const NetId carry = or2(ab, axb_c, prefix + ".cout");
  return {sum, carry};
}

Builder::SumCarry Builder::full_adder_nor(NetId a, NetId b, NetId cin,
                                          const std::string& prefix) {
  // Classic 9-NOR full adder (as used throughout ISCAS-85 C6288):
  //   n1 = NOR(a, b)
  //   n2 = NOR(a, n1), n3 = NOR(b, n1)       -- half-sum helpers
  //   hs = NOR(n2, n3)                        -- hs = a XNOR b
  //   n4 = NOR(hs, cin)
  //   n5 = NOR(hs, n4), n6 = NOR(cin, n4)
  //   sum = NOR(n5, n6)                       -- sum = a^b^cin
  //   carry = NOR(n1, n4)
  const NetId n1 = nor2(a, b, prefix + ".n1");
  const NetId n2 = nor2(a, n1, prefix + ".n2");
  const NetId n3 = nor2(b, n1, prefix + ".n3");
  const NetId hs = nor2(n2, n3, prefix + ".hs");
  const NetId n4 = nor2(hs, cin, prefix + ".n4");
  const NetId n5 = nor2(hs, n4, prefix + ".n5");
  const NetId n6 = nor2(cin, n4, prefix + ".n6");
  const NetId sum = nor2(n5, n6, prefix + ".sum");
  const NetId carry = nor2(n1, n4, prefix + ".cout");
  return {sum, carry};
}

Builder::SumCarry Builder::half_adder_nor(NetId a, NetId b,
                                          const std::string& prefix) {
  // 6-NOR half adder: g4 = a XNOR b; sum = NOR(g4, g1) = a XOR b;
  // carry = NOR(g1, sum) = a AND b.
  const NetId g1 = nor2(a, b, prefix + ".g1");
  const NetId g2 = nor2(a, g1, prefix + ".g2");
  const NetId g3 = nor2(b, g1, prefix + ".g3");
  const NetId g4 = nor2(g2, g3, prefix + ".g4");
  const NetId sum = nor2(g4, g1, prefix + ".sum");
  const NetId carry = nor2(g1, sum, prefix + ".cout");
  return {sum, carry};
}

std::vector<NetId> Builder::mux_bus(const std::vector<NetId>& a,
                                    const std::vector<NetId>& b, NetId sel,
                                    const std::string& prefix) {
  SLM_REQUIRE(a.size() == b.size(), "mux_bus: width mismatch");
  std::vector<NetId> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(mux2(a[i], b[i], sel, prefix + "[" + std::to_string(i) + "]"));
  }
  return out;
}

}  // namespace slm::netlist
