// Zero-delay functional evaluation of an acyclic netlist. Used by tests
// (functional correctness of the generators), by ATPG (fault-free
// responses) and by the timed simulator (final settled values).
#pragma once

#include <vector>

#include "common/bitvec.hpp"
#include "netlist/netlist.hpp"

namespace slm::netlist {

class Evaluator {
 public:
  /// Precomputes the topological order; throws on cyclic netlists. The
  /// netlist must outlive the Evaluator (temporaries are rejected).
  explicit Evaluator(const Netlist& nl);
  explicit Evaluator(Netlist&&) = delete;

  /// Evaluate with input values in input-declaration order. Returns the
  /// value of every net (indexable by NetId).
  std::vector<bool> eval_nets(const BitVec& input_values) const;

  /// Evaluate and return only the primary outputs, in declaration order.
  BitVec eval(const BitVec& input_values) const;

  const Netlist& netlist() const { return nl_; }

 private:
  const Netlist& nl_;
  std::vector<NetId> order_;
};

}  // namespace slm::netlist
