#include "netlist/export.hpp"

#include <string>

namespace slm::netlist {

namespace {

std::string net_name(const Netlist& nl, NetId id) {
  const Gate& g = nl.gate(id);
  if (!g.name.empty()) {
    // Sanitise: Verilog identifiers cannot contain '.', '[' or ']'.
    std::string s = g.name;
    for (char& c : s) {
      if (c == '.' || c == '[' || c == ']') c = '_';
    }
    return s + "_n" + std::to_string(id);
  }
  return "n" + std::to_string(id);
}

}  // namespace

void export_verilog(const Netlist& nl, std::ostream& os) {
  os << "module " << nl.name() << " (\n";
  for (NetId in : nl.inputs()) {
    os << "  input  " << net_name(nl, in) << ",\n";
  }
  const auto& outs = nl.outputs();
  for (std::size_t i = 0; i < outs.size(); ++i) {
    os << "  output po_" << i << (i + 1 < outs.size() ? "," : "") << "\n";
  }
  os << ");\n";

  for (NetId id = 0; id < nl.gate_count(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::kInput) continue;
    os << "  wire " << net_name(nl, id) << ";\n";
  }

  for (NetId id = 0; id < nl.gate_count(); ++id) {
    const Gate& g = nl.gate(id);
    const std::string out = net_name(nl, id);
    switch (g.type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        os << "  assign " << out << " = 1'b0;\n";
        break;
      case GateType::kConst1:
        os << "  assign " << out << " = 1'b1;\n";
        break;
      case GateType::kBuf:
        os << "  assign " << out << " = " << net_name(nl, g.fanin[0]) << ";\n";
        break;
      case GateType::kNot:
        os << "  assign " << out << " = ~" << net_name(nl, g.fanin[0])
           << ";\n";
        break;
      case GateType::kMux2:
        os << "  assign " << out << " = " << net_name(nl, g.fanin[2]) << " ? "
           << net_name(nl, g.fanin[1]) << " : " << net_name(nl, g.fanin[0])
           << ";\n";
        break;
      default: {
        os << "  " << gate_type_name(g.type) << " g" << id << " (" << out;
        for (NetId f : g.fanin) os << ", " << net_name(nl, f);
        os << ");\n";
        break;
      }
    }
  }

  for (std::size_t i = 0; i < outs.size(); ++i) {
    os << "  assign po_" << i << " = " << net_name(nl, outs[i].net)
       << ";  // " << outs[i].name << "\n";
  }
  os << "endmodule\n";
}

void export_debug(const Netlist& nl, std::ostream& os) {
  os << "# netlist " << nl.name() << ": " << nl.gate_count() << " gates, "
     << nl.inputs().size() << " inputs, " << nl.outputs().size()
     << " outputs\n";
  for (NetId id = 0; id < nl.gate_count(); ++id) {
    const Gate& g = nl.gate(id);
    os << id << '\t' << gate_type_name(g.type) << '\t' << g.delay_ns << '\t';
    for (std::size_t i = 0; i < g.fanin.size(); ++i) {
      os << (i == 0 ? "" : ",") << g.fanin[i];
    }
    os << '\t' << g.name << '\n';
  }
}

}  // namespace slm::netlist
