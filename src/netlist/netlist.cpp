#include "netlist/netlist.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace slm::netlist {

NetId Netlist::add_gate(Gate g) {
  const Arity arity = gate_arity(g.type);
  if (g.type == GateType::kInput || g.type == GateType::kConst0 ||
      g.type == GateType::kConst1) {
    SLM_REQUIRE(g.fanin.empty(), "source gate must have no fanin");
  } else {
    SLM_REQUIRE(g.fanin.size() >= arity.min,
                "gate has too few fanins: " + g.name);
    SLM_REQUIRE(arity.max == 0 || g.fanin.size() <= arity.max,
                "gate has too many fanins: " + g.name);
    for (NetId f : g.fanin) {
      SLM_REQUIRE(f < gates_.size(), "fanin references unknown net");
    }
  }
  const NetId id = static_cast<NetId>(gates_.size());
  if (g.type == GateType::kInput) inputs_.push_back(id);
  gates_.push_back(std::move(g));
  return id;
}

void Netlist::add_output(NetId net, std::string name) {
  SLM_REQUIRE(net < gates_.size(), "output references unknown net");
  outputs_.push_back(OutputPort{net, std::move(name)});
}

void Netlist::rewire_fanin(NetId gate, std::size_t pin, NetId new_driver) {
  SLM_REQUIRE(gate < gates_.size(), "rewire_fanin: unknown gate");
  SLM_REQUIRE(pin < gates_[gate].fanin.size(), "rewire_fanin: bad pin");
  SLM_REQUIRE(new_driver < gates_.size(), "rewire_fanin: unknown driver");
  gates_[gate].fanin[pin] = new_driver;
}

const Gate& Netlist::gate(NetId id) const {
  SLM_REQUIRE(id < gates_.size(), "gate: unknown id");
  return gates_[id];
}

Gate& Netlist::gate_mut(NetId id) {
  SLM_REQUIRE(id < gates_.size(), "gate_mut: unknown id");
  return gates_[id];
}

std::vector<NetId> Netlist::output_nets() const {
  std::vector<NetId> nets;
  nets.reserve(outputs_.size());
  for (const auto& port : outputs_) nets.push_back(port.net);
  return nets;
}

std::vector<NetId> Netlist::kahn_order(std::size_t* processed) const {
  std::vector<std::uint32_t> pending(gates_.size(), 0);
  for (const auto& g : gates_) {
    for (NetId f : g.fanin) {
      (void)f;
    }
  }
  // in-degree = number of fanins
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    pending[i] = static_cast<std::uint32_t>(gates_[i].fanin.size());
  }
  // fanout adjacency
  std::vector<std::vector<NetId>> fanout(gates_.size());
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    for (NetId f : gates_[i].fanin) {
      fanout[f].push_back(static_cast<NetId>(i));
    }
  }
  std::vector<NetId> queue;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (pending[i] == 0) queue.push_back(static_cast<NetId>(i));
  }
  std::vector<NetId> order;
  order.reserve(gates_.size());
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NetId id = queue[head];
    order.push_back(id);
    for (NetId succ : fanout[id]) {
      if (--pending[succ] == 0) queue.push_back(succ);
    }
  }
  if (processed != nullptr) *processed = order.size();
  return order;
}

std::vector<NetId> Netlist::topo_order() const {
  std::size_t processed = 0;
  auto order = kahn_order(&processed);
  SLM_REQUIRE(processed == gates_.size(),
              "topo_order: netlist has a combinational cycle");
  return order;
}

bool Netlist::has_combinational_cycle() const {
  std::size_t processed = 0;
  kahn_order(&processed);
  return processed != gates_.size();
}

std::vector<NetId> Netlist::gates_on_cycles() const {
  // Gates not processed by Kahn's algorithm sit on or behind a cycle;
  // narrow to gates actually on a cycle via reverse reachability within
  // the unprocessed subgraph.
  std::size_t processed = 0;
  auto order = kahn_order(&processed);
  if (processed == gates_.size()) return {};

  std::vector<bool> done(gates_.size(), false);
  for (NetId id : order) done[id] = true;

  // A gate is on a cycle iff, within the unprocessed set, it can reach
  // itself. For checker purposes the standard approximation — unprocessed
  // gates whose every fanin chain stays unprocessed — is refined with a
  // simple DFS cycle walk.
  std::vector<NetId> result;
  std::vector<std::uint8_t> state(gates_.size(), 0);  // 0=unseen,1=stack,2=ok
  std::vector<bool> on_cycle(gates_.size(), false);

  // Iterative DFS marking back edges.
  for (std::size_t root = 0; root < gates_.size(); ++root) {
    if (done[root] || state[root] != 0) continue;
    struct Frame {
      NetId id;
      std::size_t next_fanin;
    };
    std::vector<Frame> stack{{static_cast<NetId>(root), 0}};
    state[root] = 1;
    while (!stack.empty()) {
      Frame& fr = stack.back();
      const Gate& g = gates_[fr.id];
      if (fr.next_fanin < g.fanin.size()) {
        const NetId f = g.fanin[fr.next_fanin++];
        if (done[f]) continue;
        if (state[f] == 0) {
          state[f] = 1;
          stack.push_back({f, 0});
        } else if (state[f] == 1) {
          // Back edge: everything on the stack from f to top is cyclic.
          bool mark = false;
          for (const auto& frame : stack) {
            if (frame.id == f) mark = true;
            if (mark) on_cycle[frame.id] = true;
          }
        }
      } else {
        state[fr.id] = 2;
        stack.pop_back();
      }
    }
  }
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (on_cycle[i]) result.push_back(static_cast<NetId>(i));
  }
  return result;
}

std::vector<std::uint32_t> Netlist::levels() const {
  auto order = topo_order();
  std::vector<std::uint32_t> level(gates_.size(), 0);
  for (NetId id : order) {
    const Gate& g = gates_[id];
    std::uint32_t max_in = 0;
    for (NetId f : g.fanin) max_in = std::max(max_in, level[f] + 1);
    level[id] = g.fanin.empty() ? 0 : max_in;
  }
  return level;
}

std::vector<std::uint32_t> Netlist::fanout_counts() const {
  std::vector<std::uint32_t> counts(gates_.size(), 0);
  for (const auto& g : gates_) {
    for (NetId f : g.fanin) ++counts[f];
  }
  return counts;
}

std::size_t Netlist::logic_gate_count() const {
  std::size_t n = 0;
  for (const auto& g : gates_) {
    if (g.type != GateType::kInput && g.type != GateType::kConst0 &&
        g.type != GateType::kConst1) {
      ++n;
    }
  }
  return n;
}

Netlist::Stats Netlist::stats() const {
  Stats s;
  s.inputs = inputs_.size();
  s.outputs = outputs_.size();
  s.gates = logic_gate_count();
  s.cyclic = has_combinational_cycle();
  if (!s.cyclic) {
    auto lv = levels();
    for (auto l : lv) s.max_level = std::max<std::size_t>(s.max_level, l);
  }
  return s;
}

}  // namespace slm::netlist
