// ISCAS ".bench" netlist format support, so the library interoperates
// with the published benchmark suites the paper draws on (C6288 et al.):
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G17)
//   G10 = NAND(G1, G3)
//   G11 = NOT(G2)
//
// Supported gate keywords: AND, OR, NAND, NOR, XOR, XNOR, NOT, BUF/BUFF.
// The writer emits the same dialect; netlists containing mux2 or
// constant gates are rejected (expand them first).
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace slm::netlist {

/// Parse a .bench stream into a netlist (throws slm::Error with a line
/// number on malformed input). Signals may be referenced before they are
/// defined, as in the published files.
Netlist parse_bench(std::istream& is, const std::string& name = "bench");

/// Convenience: parse from a string.
Netlist parse_bench_string(const std::string& text,
                           const std::string& name = "bench");

/// Write a netlist in .bench syntax.
void write_bench(const Netlist& nl, std::ostream& os);

}  // namespace slm::netlist
