#include "netlist/generators/fast_datapath.hpp"

#include <vector>

#include "common/error.hpp"
#include "netlist/builder.hpp"

namespace slm::netlist {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t log2_of(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

}  // namespace

Netlist make_kogge_stone_adder(const KoggeStoneOptions& opt) {
  const std::size_t n = opt.width;
  SLM_REQUIRE(n >= 2, "kogge-stone: width must be >= 2");
  Builder b("ks" + std::to_string(n));

  const auto a_in = b.input_bus("a", n);
  const auto b_in = b.input_bus("b", n);
  std::vector<NetId> a(n), bb(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = b.gate(GateType::kBuf, {a_in[i]}, "a_rt" + std::to_string(i),
                  opt.input_routing_delay_ns);
    bb[i] = b.gate(GateType::kBuf, {b_in[i]}, "b_rt" + std::to_string(i),
                   opt.input_routing_delay_ns);
  }

  // Level 0: per-bit generate/propagate.
  std::vector<NetId> g(n), p(n);
  for (std::size_t i = 0; i < n; ++i) {
    g[i] = b.gate(GateType::kAnd, {a[i], bb[i]}, "g0_" + std::to_string(i),
                  opt.gate_delay_ns);
    p[i] = b.gate(GateType::kXor, {a[i], bb[i]}, "p0_" + std::to_string(i),
                  opt.gate_delay_ns);
  }
  const std::vector<NetId> p0 = p;  // per-bit propagate for the sum xor

  // Prefix levels: (g, p)_i = (g_i | p_i & g_{i-d}, p_i & p_{i-d}).
  for (std::size_t d = 1; d < n; d <<= 1) {
    std::vector<NetId> ng = g, np = p;
    for (std::size_t i = d; i < n; ++i) {
      const std::string tag =
          "l" + std::to_string(d) + "_" + std::to_string(i);
      const NetId t = b.gate(GateType::kAnd, {p[i], g[i - d]}, tag + ".t",
                             opt.gate_delay_ns);
      ng[i] = b.gate(GateType::kOr, {g[i], t}, tag + ".g",
                     opt.gate_delay_ns);
      np[i] = b.gate(GateType::kAnd, {p[i], p[i - d]}, tag + ".p",
                     opt.gate_delay_ns);
    }
    g = std::move(ng);
    p = std::move(np);
  }

  // Sum: s_0 = p0_0; s_i = p0_i ^ c_{i-1} with c_i = prefix g_i.
  std::vector<NetId> sum(n);
  sum[0] = b.gate(GateType::kBuf, {p0[0]}, "s0", opt.gate_delay_ns);
  for (std::size_t i = 1; i < n; ++i) {
    sum[i] = b.gate(GateType::kXor, {p0[i], g[i - 1]},
                    "s" + std::to_string(i), opt.gate_delay_ns);
  }
  b.output_bus(sum, "sum");
  b.output(g[n - 1], "cout");
  return b.take();
}

BitVec pack_ks_inputs(const KoggeStoneOptions& opt, std::uint64_t a,
                      std::uint64_t b) {
  SLM_REQUIRE(opt.width <= 64, "pack_ks_inputs: width > 64");
  BitVec in(2 * opt.width);
  for (std::size_t i = 0; i < opt.width; ++i) {
    in.set(i, ((a >> i) & 1) != 0);
    in.set(opt.width + i, ((b >> i) & 1) != 0);
  }
  return in;
}

Netlist make_wallace_multiplier(const WallaceOptions& opt) {
  const std::size_t n = opt.operand_width;
  SLM_REQUIRE(n >= 2, "wallace: operand width must be >= 2");
  Builder b("wallace" + std::to_string(n));

  const auto a_in = b.input_bus("a", n);
  const auto b_in = b.input_bus("b", n);
  std::vector<NetId> a(n), bb(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = b.gate(GateType::kBuf, {a_in[i]}, "a_rt" + std::to_string(i),
                  opt.input_routing_delay_ns);
    bb[i] = b.gate(GateType::kBuf, {b_in[i]}, "b_rt" + std::to_string(i),
                   opt.input_routing_delay_ns);
  }

  // Partial-product columns by weight.
  std::vector<std::vector<NetId>> col(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      col[i + j].push_back(
          b.gate(GateType::kAnd, {a[j], bb[i]},
                 "pp" + std::to_string(i) + "_" + std::to_string(j),
                 opt.and_delay_ns));
    }
  }

  // Wallace reduction: compress every column with full/half adders in
  // parallel rounds until no column holds more than 2 bits.
  auto fa = [&](NetId x, NetId y, NetId z, const std::string& tag) {
    const NetId axy =
        b.gate(GateType::kXor, {x, y}, tag + ".axy", opt.gate_delay_ns);
    const NetId s =
        b.gate(GateType::kXor, {axy, z}, tag + ".s", opt.gate_delay_ns);
    const NetId c1 =
        b.gate(GateType::kAnd, {x, y}, tag + ".c1", opt.gate_delay_ns);
    const NetId c2 =
        b.gate(GateType::kAnd, {axy, z}, tag + ".c2", opt.gate_delay_ns);
    const NetId c =
        b.gate(GateType::kOr, {c1, c2}, tag + ".c", opt.gate_delay_ns);
    return std::pair<NetId, NetId>{s, c};
  };
  auto ha = [&](NetId x, NetId y, const std::string& tag) {
    const NetId s =
        b.gate(GateType::kXor, {x, y}, tag + ".s", opt.gate_delay_ns);
    const NetId c =
        b.gate(GateType::kAnd, {x, y}, tag + ".c", opt.gate_delay_ns);
    return std::pair<NetId, NetId>{s, c};
  };

  int round = 0;
  bool reduced = true;
  while (reduced) {
    reduced = false;
    std::vector<std::vector<NetId>> next(2 * n);
    for (std::size_t w = 0; w < 2 * n; ++w) {
      auto& bits = col[w];
      std::size_t i = 0;
      while (bits.size() - i >= 3) {
        const auto [s, c] =
            fa(bits[i], bits[i + 1], bits[i + 2],
               "r" + std::to_string(round) + "w" + std::to_string(w) + "_" +
                   std::to_string(i));
        next[w].push_back(s);
        if (w + 1 < 2 * n) next[w + 1].push_back(c);
        i += 3;
        reduced = true;
      }
      if (bits.size() - i == 2 && bits.size() > 2) {
        const auto [s, c] = ha(bits[i], bits[i + 1],
                               "r" + std::to_string(round) + "h" +
                                   std::to_string(w));
        next[w].push_back(s);
        if (w + 1 < 2 * n) next[w + 1].push_back(c);
        i += 2;
        reduced = true;
      }
      for (; i < bits.size(); ++i) next[w].push_back(bits[i]);
    }
    col = std::move(next);
    ++round;
  }

  // Final two rows: carry-propagate with a Kogge-Stone-style prefix over
  // the 2n-bit width. Build operand vectors (missing bits = const 0).
  const NetId zero = b.const0();
  std::vector<NetId> x(2 * n, zero), y(2 * n, zero);
  for (std::size_t w = 0; w < 2 * n; ++w) {
    SLM_ASSERT(col[w].size() <= 2, "wallace reduction did not converge");
    if (!col[w].empty()) x[w] = col[w][0];
    if (col[w].size() == 2) y[w] = col[w][1];
  }
  std::vector<NetId> g(2 * n), p(2 * n), pxor(2 * n);
  for (std::size_t i = 0; i < 2 * n; ++i) {
    g[i] = b.gate(GateType::kAnd, {x[i], y[i]}, "fg" + std::to_string(i),
                  opt.gate_delay_ns);
    p[i] = b.gate(GateType::kXor, {x[i], y[i]}, "fp" + std::to_string(i),
                  opt.gate_delay_ns);
    pxor[i] = p[i];
  }
  for (std::size_t d = 1; d < 2 * n; d <<= 1) {
    std::vector<NetId> ng = g, np = p;
    for (std::size_t i = d; i < 2 * n; ++i) {
      const std::string tag =
          "fl" + std::to_string(d) + "_" + std::to_string(i);
      const NetId t = b.gate(GateType::kAnd, {p[i], g[i - d]}, tag + ".t",
                             opt.gate_delay_ns);
      ng[i] = b.gate(GateType::kOr, {g[i], t}, tag + ".g",
                     opt.gate_delay_ns);
      np[i] = b.gate(GateType::kAnd, {p[i], p[i - d]}, tag + ".p",
                     opt.gate_delay_ns);
    }
    g = std::move(ng);
    p = std::move(np);
  }
  std::vector<NetId> out(2 * n);
  out[0] = b.gate(GateType::kBuf, {pxor[0]}, "o0", opt.gate_delay_ns);
  for (std::size_t i = 1; i < 2 * n; ++i) {
    out[i] = b.gate(GateType::kXor, {pxor[i], g[i - 1]},
                    "o" + std::to_string(i), opt.gate_delay_ns);
  }
  b.output_bus(out, "p");
  return b.take();
}

BitVec pack_wallace_inputs(const WallaceOptions& opt, std::uint64_t a,
                           std::uint64_t b) {
  SLM_REQUIRE(opt.operand_width <= 32, "pack_wallace_inputs: width > 32");
  BitVec in(2 * opt.operand_width);
  for (std::size_t i = 0; i < opt.operand_width; ++i) {
    in.set(i, ((a >> i) & 1) != 0);
    in.set(opt.operand_width + i, ((b >> i) & 1) != 0);
  }
  return in;
}

Netlist make_barrel_shifter(const BarrelShifterOptions& opt) {
  const std::size_t n = opt.width;
  SLM_REQUIRE(is_pow2(n) && n >= 2, "barrel: width must be a power of two");
  const std::size_t stages = log2_of(n);
  Builder b("barrel" + std::to_string(n));

  const auto d_in = b.input_bus("d", n);
  const auto s_in = b.input_bus("s", stages);

  std::vector<NetId> cur(n);
  for (std::size_t i = 0; i < n; ++i) {
    cur[i] = b.gate(GateType::kBuf, {d_in[i]}, "d_rt" + std::to_string(i),
                    opt.input_routing_delay_ns);
  }
  for (std::size_t st = 0; st < stages; ++st) {
    const std::size_t amount = std::size_t{1} << st;
    std::vector<NetId> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Left-rotate: output i takes input (i - amount) mod n when the
      // stage's select bit is set.
      const NetId rotated = cur[(i + n - amount) % n];
      next[i] = b.gate(GateType::kMux2, {cur[i], rotated, s_in[st]},
                       "st" + std::to_string(st) + "_" + std::to_string(i),
                       opt.mux_delay_ns);
    }
    cur = std::move(next);
  }
  b.output_bus(cur, "q");
  return b.take();
}

BitVec pack_barrel_inputs(const BarrelShifterOptions& opt, std::uint64_t data,
                          std::uint64_t shift) {
  SLM_REQUIRE(opt.width <= 64, "pack_barrel_inputs: width > 64");
  const std::size_t stages = log2_of(opt.width);
  BitVec in(opt.width + stages);
  for (std::size_t i = 0; i < opt.width; ++i) {
    in.set(i, ((data >> i) & 1) != 0);
  }
  for (std::size_t i = 0; i < stages; ++i) {
    in.set(opt.width + i, ((shift >> i) & 1) != 0);
  }
  return in;
}

}  // namespace slm::netlist
