#include "netlist/generators/random_dag.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "netlist/builder.hpp"

namespace slm::netlist {

Netlist make_random_dag(const RandomDagOptions& opt) {
  SLM_REQUIRE(opt.inputs >= 1 && opt.gates >= 1 && opt.outputs >= 1,
              "random_dag: empty dimensions");
  SLM_REQUIRE(opt.min_delay_ns > 0 && opt.max_delay_ns >= opt.min_delay_ns,
              "random_dag: bad delay range");
  Xoshiro256 rng(opt.seed);
  Builder b("rand" + std::to_string(opt.seed));

  std::vector<NetId> nets;
  for (std::size_t i = 0; i < opt.inputs; ++i) {
    nets.push_back(b.input("i" + std::to_string(i)));
  }

  static constexpr GateType kTypes[] = {
      GateType::kAnd, GateType::kOr,  GateType::kNand, GateType::kNor,
      GateType::kXor, GateType::kXnor, GateType::kNot, GateType::kBuf,
  };
  std::vector<NetId> logic;
  for (std::size_t g = 0; g < opt.gates; ++g) {
    const GateType type =
        kTypes[rng.uniform_int(sizeof kTypes / sizeof kTypes[0])];
    const double delay = rng.uniform(opt.min_delay_ns, opt.max_delay_ns);
    std::vector<NetId> fanin;
    const std::size_t arity =
        (type == GateType::kNot || type == GateType::kBuf) ? 1 : 2;
    for (std::size_t f = 0; f < arity; ++f) {
      fanin.push_back(nets[rng.uniform_int(nets.size())]);
    }
    const NetId id =
        b.gate(type, std::move(fanin), "g" + std::to_string(g), delay);
    nets.push_back(id);
    logic.push_back(id);
  }

  // Outputs from the tail of the gate list (deep nets preferred).
  const std::size_t span = std::min(logic.size(), opt.outputs * 3);
  for (std::size_t o = 0; o < opt.outputs; ++o) {
    const std::size_t idx =
        logic.size() - 1 - rng.uniform_int(span);
    b.output(logic[idx], "o" + std::to_string(o));
  }
  return b.take();
}

}  // namespace slm::netlist
