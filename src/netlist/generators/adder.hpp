// Ripple-carry adder generator. The 192-bit instance inside the paper's
// ALU is the canonical "benign sensor" circuit: the carry chain gives a
// long, evenly-spaced arrival-time staircase over the sum endpoints, which
// is what makes the overclocked capture behave like a TDC.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "netlist/netlist.hpp"

namespace slm::netlist {

struct AdderOptions {
  std::size_t width = 192;

  /// Per-stage delay of the carry path (ns). FPGA dedicated carry chains
  /// are very fast (~15-20 ps/bit); generic LUT logic is ~120 ps/bit.
  /// The default models a mapped carry chain, which is what Vivado infers
  /// for a wide adder and what makes ~40% of a 192-bit adder's endpoints
  /// land inside the voltage-sensitivity band at 300 MHz.
  double carry_stage_delay_ns = 0.019;

  /// Delay of the sum XOR (LUT) per bit (ns).
  double sum_xor_delay_ns = 0.080;

  /// Delay from the primary inputs to the start of the chain (ns) —
  /// models input routing/fanout buffering.
  double input_routing_delay_ns = 0.45;

  bool with_carry_in = true;
  bool with_carry_out = true;
};

/// Build an adder netlist. Inputs (declaration order): a[0..w-1],
/// b[0..w-1], then cin if enabled. Outputs: sum[0..w-1], then cout.
Netlist make_ripple_carry_adder(const AdderOptions& opt);

/// Pack operand values into the adder's input vector. Operands are given
/// as BitVecs of the adder width.
BitVec pack_adder_inputs(const AdderOptions& opt, const BitVec& a,
                         const BitVec& b, bool cin = false);

/// Convenience for widths <= 64.
BitVec pack_adder_inputs_u64(const AdderOptions& opt, std::uint64_t a,
                             std::uint64_t b, bool cin = false);

}  // namespace slm::netlist
