#include "netlist/generators/alu.hpp"

#include "common/error.hpp"
#include "netlist/builder.hpp"

namespace slm::netlist {

Netlist make_alu(const AluOptions& opt) {
  SLM_REQUIRE(opt.width >= 1, "alu width must be >= 1");
  Builder b("alu" + std::to_string(opt.width));

  const auto a = b.input_bus("a", opt.width);
  const auto bb = b.input_bus("b", opt.width);
  const NetId op0 = b.input("op0");
  const NetId op1 = b.input("op1");

  // Input routing buffers shared by all function units.
  std::vector<NetId> ar(opt.width), br(opt.width);
  for (std::size_t i = 0; i < opt.width; ++i) {
    ar[i] = b.gate(GateType::kBuf, {a[i]}, "a_rt" + std::to_string(i),
                   opt.adder.input_routing_delay_ns);
    br[i] = b.gate(GateType::kBuf, {bb[i]}, "b_rt" + std::to_string(i),
                   opt.adder.input_routing_delay_ns);
  }

  // Adder (carry-chain style, same cell structure as make_ripple_carry_adder
  // but stitched to the shared routing buffers).
  NetId carry = b.const0();
  std::vector<NetId> sum(opt.width);
  for (std::size_t i = 0; i < opt.width; ++i) {
    const std::string p = "fa" + std::to_string(i);
    const NetId prop = b.gate(GateType::kXor, {ar[i], br[i]}, p + ".p",
                              opt.adder.sum_xor_delay_ns);
    const NetId gen = b.gate(GateType::kAnd, {ar[i], br[i]}, p + ".g",
                             opt.adder.sum_xor_delay_ns);
    sum[i] = b.gate(GateType::kXor, {prop, carry}, p + ".sum",
                    opt.adder.sum_xor_delay_ns);
    // MUXCY: carry_out = prop ? carry_in : (a & b); see adder.cpp.
    carry = b.gate(GateType::kMux2, {gen, carry, prop}, p + ".cy",
                   opt.adder.carry_stage_delay_ns);
  }

  // Bitwise units.
  std::vector<NetId> land(opt.width), lor(opt.width), lxor(opt.width);
  for (std::size_t i = 0; i < opt.width; ++i) {
    const std::string s = std::to_string(i);
    land[i] = b.gate(GateType::kAnd, {ar[i], br[i]}, "and" + s,
                     opt.logic_delay_ns);
    lor[i] = b.gate(GateType::kOr, {ar[i], br[i]}, "or" + s,
                    opt.logic_delay_ns);
    lxor[i] = b.gate(GateType::kXor, {ar[i], br[i]}, "xor" + s,
                     opt.logic_delay_ns);
  }

  // Result mux tree: op = {00: add, 01: and, 10: or, 11: xor}.
  std::vector<NetId> result(opt.width);
  for (std::size_t i = 0; i < opt.width; ++i) {
    const std::string s = std::to_string(i);
    const NetId m0 = b.gate(GateType::kMux2, {sum[i], land[i], op0},
                            "m0_" + s, opt.mux_delay_ns);
    const NetId m1 = b.gate(GateType::kMux2, {lor[i], lxor[i], op0},
                            "m1_" + s, opt.mux_delay_ns);
    result[i] = b.gate(GateType::kMux2, {m0, m1, op1}, "res" + s,
                       opt.mux_delay_ns);
  }

  b.output_bus(result, "result");
  b.output(carry, "cout");
  return b.take();
}

BitVec pack_alu_inputs(const AluOptions& opt, const BitVec& a, const BitVec& b,
                       AluOp op) {
  SLM_REQUIRE(a.size() == opt.width && b.size() == opt.width,
              "pack_alu_inputs: operand width mismatch");
  BitVec in(2 * opt.width + 2);
  for (std::size_t i = 0; i < opt.width; ++i) {
    in.set(i, a.get(i));
    in.set(opt.width + i, b.get(i));
  }
  const auto code = static_cast<std::uint8_t>(op);
  in.set(2 * opt.width, (code & 1) != 0);
  in.set(2 * opt.width + 1, (code & 2) != 0);
  return in;
}

BitVec alu_reference(const AluOptions& opt, const BitVec& a, const BitVec& b,
                     AluOp op, bool* cout) {
  SLM_REQUIRE(a.size() == opt.width && b.size() == opt.width,
              "alu_reference: operand width mismatch");
  BitVec out(opt.width);
  bool carry = false;
  switch (op) {
    case AluOp::kAdd: {
      for (std::size_t i = 0; i < opt.width; ++i) {
        const int s = static_cast<int>(a.get(i)) + static_cast<int>(b.get(i)) +
                      static_cast<int>(carry);
        out.set(i, (s & 1) != 0);
        carry = s >= 2;
      }
      break;
    }
    case AluOp::kAnd:
      out = a & b;
      break;
    case AluOp::kOr:
      out = a | b;
      break;
    case AluOp::kXor:
      out = a ^ b;
      break;
  }
  if (cout != nullptr) *cout = carry;
  return out;
}

BitVec alu_measure_stimulus(const AluOptions& opt) {
  BitVec a(opt.width);
  a.set_all(true);           // A = 2^w - 1
  BitVec b(opt.width);
  b.set(0, true);            // B = 1
  return pack_alu_inputs(opt, a, b, AluOp::kAdd);
}

BitVec alu_reset_stimulus(const AluOptions& opt) {
  return pack_alu_inputs(opt, BitVec(opt.width), BitVec(opt.width),
                         AluOp::kAdd);
}

}  // namespace slm::netlist
