#include "netlist/generators/adder.hpp"

#include "common/error.hpp"
#include "netlist/builder.hpp"

namespace slm::netlist {

Netlist make_ripple_carry_adder(const AdderOptions& opt) {
  SLM_REQUIRE(opt.width >= 1, "adder width must be >= 1");
  Builder b("rca" + std::to_string(opt.width));

  const auto a = b.input_bus("a", opt.width);
  const auto bb = b.input_bus("b", opt.width);
  NetId carry = kInvalidNet;
  if (opt.with_carry_in) {
    carry = b.input("cin");
  } else {
    carry = b.const0();
  }

  // Input routing stage: a buffer in front of each operand bit models the
  // fabric routing from the operand registers to the carry chain.
  std::vector<NetId> ar(opt.width), br(opt.width);
  for (std::size_t i = 0; i < opt.width; ++i) {
    ar[i] = b.gate(GateType::kBuf, {a[i]}, "a_rt" + std::to_string(i),
                   opt.input_routing_delay_ns);
    br[i] = b.gate(GateType::kBuf, {bb[i]}, "b_rt" + std::to_string(i),
                   opt.input_routing_delay_ns);
  }

  std::vector<NetId> sum(opt.width);
  for (std::size_t i = 0; i < opt.width; ++i) {
    const std::string p = "fa" + std::to_string(i);
    // Carry-chain style full adder: propagate = a^b computed in a LUT,
    // carry muxed through the dedicated chain (fast), sum xor (LUT).
    const NetId prop = b.gate(GateType::kXor, {ar[i], br[i]}, p + ".p",
                              opt.sum_xor_delay_ns);
    const NetId gen = b.gate(GateType::kAnd, {ar[i], br[i]}, p + ".g",
                             opt.sum_xor_delay_ns);
    sum[i] = b.gate(GateType::kXor, {prop, carry}, p + ".sum",
                    opt.sum_xor_delay_ns);
    // carry_out = prop ? carry_in : generate  (MUXCY in 7-series terms).
    // The generate term must be a&b — feeding a_i directly would bypass
    // the ripple through the prop-low transient and kill the staircase.
    carry = b.gate(GateType::kMux2, {gen, carry, prop}, p + ".cy",
                   opt.carry_stage_delay_ns);
  }

  b.output_bus(sum, "sum");
  if (opt.with_carry_out) b.output(carry, "cout");
  return b.take();
}

BitVec pack_adder_inputs(const AdderOptions& opt, const BitVec& a,
                         const BitVec& b, bool cin) {
  SLM_REQUIRE(a.size() == opt.width && b.size() == opt.width,
              "pack_adder_inputs: operand width mismatch");
  const std::size_t total = 2 * opt.width + (opt.with_carry_in ? 1 : 0);
  BitVec in(total);
  for (std::size_t i = 0; i < opt.width; ++i) {
    in.set(i, a.get(i));
    in.set(opt.width + i, b.get(i));
  }
  if (opt.with_carry_in) in.set(2 * opt.width, cin);
  return in;
}

BitVec pack_adder_inputs_u64(const AdderOptions& opt, std::uint64_t a,
                             std::uint64_t b, bool cin) {
  SLM_REQUIRE(opt.width <= 64, "pack_adder_inputs_u64: width > 64");
  return pack_adder_inputs(opt, BitVec(opt.width, a), BitVec(opt.width, b),
                           cin);
}

}  // namespace slm::netlist
