// The paper's benign ALU: a 192-bit datapath with an embedded ripple-carry
// adder plus bitwise logic ops behind an op-select mux. Only the 192
// result bits are registered — those registers' D pins are the path
// endpoints misused as sensor bits.
#pragma once

#include <cstdint>

#include "common/bitvec.hpp"
#include "netlist/generators/adder.hpp"
#include "netlist/netlist.hpp"

namespace slm::netlist {

/// ALU operation encoding on the op[1:0] inputs.
enum class AluOp : std::uint8_t { kAdd = 0, kAnd = 1, kOr = 2, kXor = 3 };

struct AluOptions {
  std::size_t width = 192;
  AdderOptions adder;  ///< width is overridden by `width`
  double mux_delay_ns = 0.070;
  double logic_delay_ns = 0.060;
};

/// Build the ALU. Inputs: a[0..w-1], b[0..w-1], op0, op1.
/// Outputs: result[0..w-1], cout.
Netlist make_alu(const AluOptions& opt);

/// Pack ALU inputs (operands as BitVecs of ALU width).
BitVec pack_alu_inputs(const AluOptions& opt, const BitVec& a, const BitVec& b,
                       AluOp op);

/// Reference result of the ALU function (for functional tests).
BitVec alu_reference(const AluOptions& opt, const BitVec& a, const BitVec& b,
                     AluOp op, bool* cout = nullptr);

/// The paper's measure stimulus: A = 2^w - 1, B = 1, op = ADD. Together
/// with the all-zero reset stimulus this launches the full carry chain.
BitVec alu_measure_stimulus(const AluOptions& opt);
BitVec alu_reset_stimulus(const AluOptions& opt);

}  // namespace slm::netlist
