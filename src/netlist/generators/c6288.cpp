#include "netlist/generators/c6288.hpp"

#include "common/error.hpp"
#include "netlist/builder.hpp"

namespace slm::netlist {

namespace {

struct NorCellFactory {
  Builder& b;
  double nor_delay;

  NetId nor2(NetId x, NetId y, const std::string& name) {
    return b.gate(GateType::kNor, {x, y}, name, nor_delay);
  }

  // 9-NOR full adder (C6288 cell).
  Builder::SumCarry full_adder(NetId a, NetId x, NetId cin,
                               const std::string& p) {
    const NetId n1 = nor2(a, x, p + ".n1");
    const NetId n2 = nor2(a, n1, p + ".n2");
    const NetId n3 = nor2(x, n1, p + ".n3");
    const NetId hs = nor2(n2, n3, p + ".hs");  // a XNOR x ... see below
    const NetId n4 = nor2(hs, cin, p + ".n4");
    const NetId n5 = nor2(hs, n4, p + ".n5");
    const NetId n6 = nor2(cin, n4, p + ".n6");
    const NetId sum = nor2(n5, n6, p + ".sum");
    const NetId carry = nor2(n1, n4, p + ".cout");
    return {sum, carry};
  }

  // 6-NOR half adder: g4 = XNOR(a,x); sum = NOR(g4, g1) = XOR(a,x);
  // carry = NOR(g1, sum) = AND(a,x).
  Builder::SumCarry half_adder(NetId a, NetId x, const std::string& p) {
    const NetId g1 = nor2(a, x, p + ".g1");
    const NetId g2 = nor2(a, g1, p + ".g2");
    const NetId g3 = nor2(x, g1, p + ".g3");
    const NetId g4 = nor2(g2, g3, p + ".g4");
    const NetId sum = nor2(g4, g1, p + ".sum");
    const NetId carry = nor2(g1, sum, p + ".cout");
    return {sum, carry};
  }
};

}  // namespace

Netlist make_c6288(const C6288Options& opt) {
  const std::size_t n = opt.operand_width;
  SLM_REQUIRE(n >= 2, "c6288: operand width must be >= 2");
  Builder b("c6288_" + std::to_string(n));
  NorCellFactory cells{b, opt.nor_delay_ns};

  const auto a_in = b.input_bus("a", n);
  const auto b_in = b.input_bus("b", n);

  std::vector<NetId> a(n), bb(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = b.gate(GateType::kBuf, {a_in[i]}, "a_rt" + std::to_string(i),
                  opt.input_routing_delay_ns);
    bb[i] = b.gate(GateType::kBuf, {b_in[i]}, "b_rt" + std::to_string(i),
                   opt.input_routing_delay_ns);
  }

  // Partial products pp[i][j] = a[j] & b[i], weight i + j.
  std::vector<std::vector<NetId>> pp(n, std::vector<NetId>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      pp[i][j] = b.gate(GateType::kAnd, {a[j], bb[i]},
                        "pp" + std::to_string(i) + "_" + std::to_string(j),
                        opt.and_delay_ns);
    }
  }

  std::vector<NetId> out(2 * n, kInvalidNet);
  out[0] = pp[0][0];

  // Braun array, carry-save between rows.
  // After processing row i, `sum[j]` holds the surviving sum bit of weight
  // i + j (j = 1..n-1 used by the next row) and `carry[j]` the carry of
  // weight i + j + 1 generated in row i.
  std::vector<NetId> sum(n), carry(n, kInvalidNet);
  for (std::size_t j = 0; j < n; ++j) sum[j] = pp[0][j];

  for (std::size_t i = 1; i < n; ++i) {
    std::vector<NetId> new_sum(n), new_carry(n, kInvalidNet);
    for (std::size_t j = 0; j < n; ++j) {
      const std::string cell =
          "r" + std::to_string(i) + "c" + std::to_string(j);
      // Bits of weight i + j entering this cell:
      //   pp[i][j], sum[j+1] from the previous row (absent for j = n-1),
      //   carry[j] from the previous row (absent in row 1).
      const NetId x = pp[i][j];
      const NetId s_prev = (j + 1 < n) ? sum[j + 1] : kInvalidNet;
      const NetId c_prev = carry[j];

      if (s_prev != kInvalidNet && c_prev != kInvalidNet) {
        const auto sc = cells.full_adder(x, s_prev, c_prev, cell);
        new_sum[j] = sc.sum;
        new_carry[j] = sc.carry;
      } else if (s_prev != kInvalidNet || c_prev != kInvalidNet) {
        const NetId y = (s_prev != kInvalidNet) ? s_prev : c_prev;
        const auto sc = cells.half_adder(x, y, cell);
        new_sum[j] = sc.sum;
        new_carry[j] = sc.carry;
      } else {
        new_sum[j] = x;  // passes through unchanged
      }
    }
    sum = std::move(new_sum);
    carry = std::move(new_carry);
    out[i] = sum[0];
  }

  // Final ripple adder over the leftover sum/carry vectors.
  // Weight n + j carries sum[j+1] (j = 0..n-2) and carry[j] (j = 0..n-1).
  NetId ripple = kInvalidNet;
  for (std::size_t j = 0; j + 1 < n; ++j) {
    const std::string cell = "fr" + std::to_string(j);
    const NetId s = sum[j + 1];
    const NetId c = carry[j];
    if (ripple == kInvalidNet) {
      const auto sc = cells.half_adder(s, c, cell);
      out[n + j] = sc.sum;
      ripple = sc.carry;
    } else {
      const auto sc = cells.full_adder(s, c, ripple, cell);
      out[n + j] = sc.sum;
      ripple = sc.carry;
    }
  }
  // Top bit: cell n-1 of each row only ever passes its partial product
  // through (it has nothing to add), so carry[n-1] is structurally zero
  // and the MSB is simply the final ripple carry.
  out[2 * n - 1] = ripple;

  b.output_bus(out, "p");
  return b.take();
}

BitVec pack_c6288_inputs(const C6288Options& opt, std::uint64_t a,
                         std::uint64_t b) {
  const std::size_t n = opt.operand_width;
  SLM_REQUIRE(n <= 64, "pack_c6288_inputs: width > 64");
  BitVec in(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    in.set(i, ((a >> i) & 1) != 0);
    in.set(n + i, ((b >> i) & 1) != 0);
  }
  return in;
}

std::uint64_t c6288_reference(const C6288Options& opt, std::uint64_t a,
                              std::uint64_t b) {
  const std::size_t n = opt.operand_width;
  SLM_REQUIRE(n <= 32, "c6288_reference: width > 32");
  const std::uint64_t mask = (n == 64) ? ~0ull : ((1ull << n) - 1);
  return (a & mask) * (b & mask);
}

BitVec c6288_measure_stimulus(const C6288Options& opt) {
  // Measure = (100...0 x 111...1). Together with the reset vector this
  // flips every partial-product row at once and drives the longest
  // diagonal carry chains of the array; found with the library's own
  // ATPG stimulus search (atpg::StimulusSearch), which ranks it at the
  // top of both structured and random candidates for endpoints toggling
  // inside the 300 MHz capture band.
  const std::uint64_t ones = (opt.operand_width >= 64)
                                 ? ~0ull
                                 : ((1ull << opt.operand_width) - 1);
  const std::uint64_t msb = 1ull << (opt.operand_width - 1);
  return pack_c6288_inputs(opt, msb, ones);
}

BitVec c6288_reset_stimulus(const C6288Options& opt) {
  // Reset = (011...1 x 111...1); see c6288_measure_stimulus.
  const std::uint64_t ones = (opt.operand_width >= 64)
                                 ? ~0ull
                                 : ((1ull << opt.operand_width) - 1);
  const std::uint64_t msb = 1ull << (opt.operand_width - 1);
  return pack_c6288_inputs(opt, msb - 1, ones);
}

}  // namespace slm::netlist
