#include "netlist/generators/suspicious.hpp"

#include "common/error.hpp"
#include "netlist/builder.hpp"

namespace slm::netlist {

Netlist make_ring_oscillator(const RingOscillatorOptions& opt) {
  // Oscillation requires an odd number of inversions around the loop; the
  // enable NAND contributes one.
  const std::size_t inversions =
      opt.inverter_stages + (opt.with_enable ? 1 : 0);
  SLM_REQUIRE(inversions % 2 == 1,
              "ring oscillator: total inversions around the loop must be odd");

  Builder b("ro" + std::to_string(opt.inverter_stages));

  // Build the chain against a placeholder feedback net, then close the
  // loop by rewiring.
  const NetId placeholder = b.const0();
  NetId head = kInvalidNet;
  std::size_t feedback_pin = 0;
  NetId prev = placeholder;
  if (opt.with_enable) {
    const NetId enable = b.input("en");
    head = b.nand2(enable, placeholder, "ro.en_nand");
    feedback_pin = 1;
    prev = head;
  }
  for (std::size_t i = 0; i < opt.inverter_stages; ++i) {
    const NetId inv = b.not_(prev == placeholder && i == 0 && !opt.with_enable
                                 ? placeholder
                                 : prev,
                             "ro.inv" + std::to_string(i));
    if (head == kInvalidNet) {
      head = inv;
      feedback_pin = 0;
    }
    prev = inv;
  }
  b.output(prev, "tap");

  Netlist nl = b.take();
  nl.rewire_fanin(head, feedback_pin, prev);
  return nl;
}

Netlist make_tdc_line(const TdcLineOptions& opt) {
  SLM_REQUIRE(opt.stages >= 1, "tdc line needs >= 1 stage");
  Builder b("tdc" + std::to_string(opt.stages));

  const NetId launch =
      opt.clock_as_data ? b.input("clk_launch", /*is_clock=*/true)
                        : b.input("launch");
  NetId prev = launch;
  for (std::size_t i = 0; i < opt.stages; ++i) {
    prev = b.gate(GateType::kBuf, {prev}, "dl" + std::to_string(i),
                  opt.stage_delay_ns);
    b.output(prev, "tap[" + std::to_string(i) + "]");
  }
  return b.take();
}

}  // namespace slm::netlist
