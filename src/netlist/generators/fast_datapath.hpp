// Fast (log-depth) datapath generators: a Kogge-Stone prefix adder, a
// Wallace-tree multiplier and a barrel shifter.
//
// These are the counter-examples to the paper's benign sensors: their
// short, balanced paths settle long before even an aggressive overclock
// edge, so they expose (almost) no voltage-sensitive endpoints. The
// circuit-suitability survey bench uses them to show that the attack
// preys specifically on long chains — ripple carries, array multipliers —
// and that latency-optimised implementations are intrinsically harder to
// misuse.
#pragma once

#include <cstdint>

#include "common/bitvec.hpp"
#include "netlist/netlist.hpp"

namespace slm::netlist {

struct KoggeStoneOptions {
  std::size_t width = 64;
  double gate_delay_ns = 0.070;          ///< prefix-cell gate delay
  double input_routing_delay_ns = 0.45;  ///< same front end as the RCA
};

/// Kogge-Stone parallel-prefix adder. Inputs: a[w], b[w]; outputs:
/// sum[w], cout. Depth O(log2 w) instead of the ripple adder's O(w).
Netlist make_kogge_stone_adder(const KoggeStoneOptions& opt);

/// Pack operands (width <= 64).
BitVec pack_ks_inputs(const KoggeStoneOptions& opt, std::uint64_t a,
                      std::uint64_t b);

struct WallaceOptions {
  std::size_t operand_width = 16;
  double gate_delay_ns = 0.070;
  double and_delay_ns = 0.050;
  double input_routing_delay_ns = 0.30;
};

/// Wallace-tree multiplier: same function as the Braun/C6288 array, but
/// with logarithmic-depth carry-save reduction and a Kogge-Stone final
/// adder. Inputs a[n], b[n]; outputs p[2n].
Netlist make_wallace_multiplier(const WallaceOptions& opt);

BitVec pack_wallace_inputs(const WallaceOptions& opt, std::uint64_t a,
                           std::uint64_t b);

struct BarrelShifterOptions {
  std::size_t width = 64;  ///< power of two
  double mux_delay_ns = 0.070;
  double input_routing_delay_ns = 0.30;
};

/// Logarithmic barrel rotator (left-rotate by `shift`). Inputs: d[w],
/// s[log2 w]; outputs q[w]. Depth log2(w) muxes.
Netlist make_barrel_shifter(const BarrelShifterOptions& opt);

BitVec pack_barrel_inputs(const BarrelShifterOptions& opt, std::uint64_t data,
                          std::uint64_t shift);

}  // namespace slm::netlist
