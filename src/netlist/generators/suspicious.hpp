// Generators for the *conspicuous* sensor circuits of prior work — ring
// oscillators (Zhao & Suh style) and TDC delay lines (Schellenberg et al.
// style). The library builds them for two reasons: as reference sensors in
// the figure benches, and as positive samples for the bitstream checker
// (they must be flagged while the benign ALU/C6288 pass).
#pragma once

#include "netlist/netlist.hpp"

namespace slm::netlist {

struct RingOscillatorOptions {
  /// Inverters in the loop. Together with the enable NAND (one inversion)
  /// the loop must contain an odd number of inversions to oscillate.
  std::size_t inverter_stages = 2;
  bool with_enable = true;  ///< NAND enable gate in the loop
};

/// Build one RO. Contains a combinational cycle by construction: the
/// evaluator rejects it, the checker must detect it. Output: the loop tap.
Netlist make_ring_oscillator(const RingOscillatorOptions& opt);

struct TdcLineOptions {
  std::size_t stages = 64;        ///< delay-line length (= sensor bits)
  double stage_delay_ns = 0.028;  ///< CARRY4-ish per-stage delay
  bool clock_as_data = true;      ///< feed the launch clock into the line
};

/// Build a TDC delay line netlist: a clock-driven buffer chain with every
/// stage tapped to a capture endpoint. The "clock used as data" property
/// is what FPGADefender-style checkers look for.
Netlist make_tdc_line(const TdcLineOptions& opt);

}  // namespace slm::netlist
