// Random combinational DAG generator — the fuzzing substrate for the
// cross-module property tests (evaluator vs timed simulation vs STA vs
// .bench round trips) and a stand-in for "whatever circuit the tenant
// happens to deploy" in attack-surface studies.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace slm::netlist {

struct RandomDagOptions {
  std::size_t inputs = 8;
  std::size_t gates = 64;
  std::size_t outputs = 8;  ///< sampled from the last gates
  std::uint64_t seed = 1;

  /// Delay range for each gate (uniform), ns.
  double min_delay_ns = 0.02;
  double max_delay_ns = 0.15;
};

/// Build a random acyclic netlist: each gate draws a type from the
/// two-input .bench-compatible set (plus NOT/BUF) and fans in uniformly
/// from earlier nets, so every draw is a legal DAG by construction.
Netlist make_random_dag(const RandomDagOptions& opt);

}  // namespace slm::netlist
