// Structural recreation of the ISCAS-85 C6288 benchmark: a 16x16 Braun
// array multiplier built from AND partial products and NOR-only half/full
// adder cells (240 adder cells, ~2.4k gates), as reverse-engineered by
// Hansen, Yalcin & Hayes. The original's long diagonal carry chains give
// the 32 product outputs a wide arrival-time spread — exactly why the
// paper picks it as the second benign sensor circuit.
#pragma once

#include <cstdint>

#include "common/bitvec.hpp"
#include "netlist/netlist.hpp"

namespace slm::netlist {

struct C6288Options {
  std::size_t operand_width = 16;  ///< 16 reproduces C6288; others for tests

  /// NOR cell delay (ns). The default is tuned so the multiplier closes
  /// timing at the paper's 50 MHz synthesis clock but misses it badly at
  /// the 300 MHz overclock.
  double nor_delay_ns = 0.040;

  /// AND partial-product gate delay (ns).
  double and_delay_ns = 0.050;

  /// Input routing delay (ns).
  double input_routing_delay_ns = 0.30;
};

/// Build the multiplier. Inputs: a[0..n-1], b[0..n-1].
/// Outputs: p[0..2n-1].
Netlist make_c6288(const C6288Options& opt);

/// Pack operand values (n <= 64 each).
BitVec pack_c6288_inputs(const C6288Options& opt, std::uint64_t a,
                         std::uint64_t b);

/// Reference product (for functional tests; requires n <= 32).
std::uint64_t c6288_reference(const C6288Options& opt, std::uint64_t a,
                              std::uint64_t b);

/// Paper stimulus: reset = 0 x 0, measure = all-ones x all-ones, which
/// drives activity through every diagonal of the array.
BitVec c6288_measure_stimulus(const C6288Options& opt);
BitVec c6288_reset_stimulus(const C6288Options& opt);

}  // namespace slm::netlist
