// Structural Verilog-ish export, mainly for documentation and debugging:
// lets a user diff the generated C6288 against the published ISCAS-85
// netlist or load the ALU into an external tool.
#pragma once

#include <ostream>

#include "netlist/netlist.hpp"

namespace slm::netlist {

/// Write the netlist as a flat structural Verilog module. Multi-input
/// gates are emitted as Verilog primitives (and/or/nor/...); mux2 becomes
/// a ternary assign.
void export_verilog(const Netlist& nl, std::ostream& os);

/// One-line-per-gate text dump (id, type, delay, fanin ids) for debugging.
void export_debug(const Netlist& nl, std::ostream& os);

}  // namespace slm::netlist
