// Fluent construction helper over Netlist. Generators use this to write
// structural RTL-ish code:
//
//   Builder b("adder");
//   auto a = b.input_bus("a", 8);
//   auto s = b.xor2(a[0], b.input("cin"));
//   b.output(s, "sum0");
//
// Bus helpers return vectors of NetIds (bit 0 first).
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace slm::netlist {

class Builder {
 public:
  explicit Builder(std::string name) : nl_(std::move(name)) {}

  /// Finish and take the netlist (builder becomes unusable).
  Netlist take() { return std::move(nl_); }

  /// Access while building (e.g. for stats).
  const Netlist& peek() const { return nl_; }

  // --- sources ------------------------------------------------------------
  NetId input(const std::string& name, bool is_clock = false);
  std::vector<NetId> input_bus(const std::string& name, std::size_t width);
  NetId const0();
  NetId const1();

  // --- gates ----------------------------------------------------------------
  NetId gate(GateType t, std::vector<NetId> fanin,
             const std::string& name = "", double delay_ns = -1.0);

  NetId buf(NetId a, const std::string& name = "");
  NetId not_(NetId a, const std::string& name = "");
  NetId and2(NetId a, NetId b, const std::string& name = "");
  NetId or2(NetId a, NetId b, const std::string& name = "");
  NetId nand2(NetId a, NetId b, const std::string& name = "");
  NetId nor2(NetId a, NetId b, const std::string& name = "");
  NetId xor2(NetId a, NetId b, const std::string& name = "");
  NetId xnor2(NetId a, NetId b, const std::string& name = "");
  NetId mux2(NetId a, NetId b, NetId sel, const std::string& name = "");

  NetId and_n(std::vector<NetId> in, const std::string& name = "");
  NetId or_n(std::vector<NetId> in, const std::string& name = "");

  // --- outputs ----------------------------------------------------------
  void output(NetId net, const std::string& name);
  void output_bus(const std::vector<NetId>& nets, const std::string& name);

  // --- composite helpers ----------------------------------------------------
  /// Full adder from XOR/AND/OR gates; returns {sum, carry}.
  struct SumCarry {
    NetId sum;
    NetId carry;
  };
  SumCarry full_adder(NetId a, NetId b, NetId cin,
                      const std::string& prefix = "fa");

  /// Full adder in the all-NOR style of ISCAS-85 C6288 (9 NOR gates).
  SumCarry full_adder_nor(NetId a, NetId b, NetId cin,
                          const std::string& prefix = "fan");

  /// Half adder in NOR style (5 NOR gates); returns {sum, carry}.
  SumCarry half_adder_nor(NetId a, NetId b, const std::string& prefix = "han");

  /// Bitwise mux over equal-width buses.
  std::vector<NetId> mux_bus(const std::vector<NetId>& a,
                             const std::vector<NetId>& b, NetId sel,
                             const std::string& prefix = "mux");

 private:
  Netlist nl_;
};

}  // namespace slm::netlist
