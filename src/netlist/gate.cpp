#include "netlist/gate.hpp"

#include "common/error.hpp"

namespace slm::netlist {

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::kInput:
      return "input";
    case GateType::kConst0:
      return "const0";
    case GateType::kConst1:
      return "const1";
    case GateType::kBuf:
      return "buf";
    case GateType::kNot:
      return "not";
    case GateType::kAnd:
      return "and";
    case GateType::kOr:
      return "or";
    case GateType::kNand:
      return "nand";
    case GateType::kNor:
      return "nor";
    case GateType::kXor:
      return "xor";
    case GateType::kXnor:
      return "xnor";
    case GateType::kMux2:
      return "mux2";
  }
  return "?";
}

Arity gate_arity(GateType t) {
  switch (t) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return {0, 1};  // max=1 is irrelevant; min=max=0 effective
    case GateType::kBuf:
    case GateType::kNot:
      return {1, 1};
    case GateType::kMux2:
      return {3, 3};
    case GateType::kAnd:
    case GateType::kOr:
    case GateType::kNand:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
      return {2, 0};
  }
  return {0, 0};
}

bool eval_gate(GateType t, const std::vector<bool>& in) {
  switch (t) {
    case GateType::kInput:
      SLM_ASSERT(false, "eval_gate called on primary input");
      return false;
    case GateType::kConst0:
      return false;
    case GateType::kConst1:
      return true;
    case GateType::kBuf:
      return in[0];
    case GateType::kNot:
      return !in[0];
    case GateType::kAnd: {
      for (bool v : in) {
        if (!v) return false;
      }
      return true;
    }
    case GateType::kOr: {
      for (bool v : in) {
        if (v) return true;
      }
      return false;
    }
    case GateType::kNand: {
      for (bool v : in) {
        if (!v) return true;
      }
      return false;
    }
    case GateType::kNor: {
      for (bool v : in) {
        if (v) return false;
      }
      return true;
    }
    case GateType::kXor: {
      bool acc = false;
      for (bool v : in) acc ^= v;
      return acc;
    }
    case GateType::kXnor: {
      bool acc = true;
      for (bool v : in) acc ^= v;
      return acc;
    }
    case GateType::kMux2:
      return in[2] ? in[1] : in[0];
  }
  return false;
}

double default_gate_delay_ns(GateType t) {
  // Loosely modelled on LUT + local routing delays of a 7-series fabric:
  // a LUT hop is ~0.15-0.25 ns including net delay; "cheap" cells that
  // would map into carry logic or pass-through get smaller numbers.
  switch (t) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0.0;
    case GateType::kBuf:
      return 0.045;
    case GateType::kNot:
      return 0.040;
    case GateType::kAnd:
    case GateType::kOr:
      return 0.060;
    case GateType::kNand:
    case GateType::kNor:
      return 0.055;
    case GateType::kXor:
    case GateType::kXnor:
      return 0.085;
    case GateType::kMux2:
      return 0.070;
  }
  return 0.05;
}

}  // namespace slm::netlist
