// Core netlist data structure.
//
// A Netlist is a DAG (cycles are representable but rejected by everything
// except the bitstream checker, which hunts for them) of gates. Every gate
// drives exactly one net; NetId is the index of the driving gate, so nets
// and gates share an id space. Primary inputs are gates of type kInput;
// primary outputs are designated nets — in this library they model the D
// pins of capture flip-flops, i.e. the "path endpoints" of the paper.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "netlist/gate.hpp"

namespace slm::netlist {

using NetId = std::uint32_t;
constexpr NetId kInvalidNet = std::numeric_limits<NetId>::max();

/// One gate instance. `fanin` lists driver nets in positional order.
struct Gate {
  GateType type = GateType::kInput;
  std::vector<NetId> fanin;
  double delay_ns = 0.0;   ///< intrinsic delay at nominal voltage
  std::string name;        ///< optional instance/net name
  bool is_clock = false;   ///< net carries a clock (inputs only; propagated
                           ///< by the bitstream checker, not stored here)
};

/// Named primary output (capture endpoint).
struct OutputPort {
  NetId net = kInvalidNet;
  std::string name;
};

class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- construction (normally via Builder) -------------------------------
  NetId add_gate(Gate g);
  void add_output(NetId net, std::string name);

  /// Replace a gate's fanin net (used by generators when stitching).
  void rewire_fanin(NetId gate, std::size_t pin, NetId new_driver);

  // --- access -------------------------------------------------------------
  std::size_t gate_count() const { return gates_.size(); }
  const Gate& gate(NetId id) const;
  Gate& gate_mut(NetId id);

  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<NetId>& inputs() const { return inputs_; }
  const std::vector<OutputPort>& outputs() const { return outputs_; }

  /// Output net ids in declaration order.
  std::vector<NetId> output_nets() const;

  // --- structure analysis ---------------------------------------------------
  /// Topological order of all gates (inputs first). Throws slm::Error if
  /// the netlist has a combinational cycle.
  std::vector<NetId> topo_order() const;

  /// True if the netlist contains at least one combinational cycle.
  bool has_combinational_cycle() const;

  /// Gates on some combinational cycle (empty if acyclic).
  std::vector<NetId> gates_on_cycles() const;

  /// Logic level per gate (inputs/consts = 0), requires acyclic.
  std::vector<std::uint32_t> levels() const;

  /// Fanout count per net.
  std::vector<std::uint32_t> fanout_counts() const;

  /// Number of gates excluding inputs and constants.
  std::size_t logic_gate_count() const;

  /// Basic structural summary for logs and docs.
  struct Stats {
    std::size_t inputs = 0;
    std::size_t outputs = 0;
    std::size_t gates = 0;        // logic gates only
    std::size_t max_level = 0;    // 0 when cyclic (not computed)
    bool cyclic = false;
  };
  Stats stats() const;

 private:
  // Kahn's algorithm; returns processed order and count.
  std::vector<NetId> kahn_order(std::size_t* processed) const;

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<NetId> inputs_;
  std::vector<OutputPort> outputs_;
};

}  // namespace slm::netlist
