// Replay a captured `SLMTRC1` store through the CPA / TVLA folds
// without regenerating a single trace (docs/STORE.md). The class labels
// come from the stored ciphertexts alone (sca::LastRoundBitModel never
// consults the plaintext), the readings feed the accumulators straight
// out of the mmap, and the folds run at the same checkpoint trace
// counts as the live engines — so by the partition-invariance argument
// in sca/cpa.hpp every progress point, rank, and correlation is
// bit-identical to the live capture that wrote the store.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/aes128.hpp"
#include "sca/cpa.hpp"
#include "sca/mtd.hpp"
#include "store/trace_store.hpp"

namespace slm::obs {
class CampaignObserver;
}

namespace slm::store {

/// Replay of a single-byte campaign store — mirrors the fields of
/// core::CampaignResult that replay can reproduce.
struct ReplayAttackResult {
  std::vector<sca::CpaProgressPoint> progress;
  sca::MtdResult mtd;
  std::uint8_t correct_guess = 0;
  std::uint8_t recovered_guess = 0;
  bool key_recovered = false;
  std::size_t traces = 0;
  double replay_seconds = 0.0;
};

/// Fold a byte-campaign store at the given checkpoint trace counts.
/// `checkpoints` must be the schedule the live campaign used
/// (core::checkpoint_schedule); entries past the store's trace count
/// are ignored, exactly as the live loop never reaches them.
ReplayAttackResult replay_attack(const TraceStoreReader& store,
                                 const std::vector<std::size_t>& checkpoints,
                                 std::uint8_t correct_guess,
                                 obs::CampaignObserver* observer = nullptr);

/// Early-exit knobs, defaults matching core::FullKeyConfig.
struct ReplayFullKeyOptions {
  bool early_exit = true;
  double early_exit_margin = 0.08;
  std::size_t early_exit_stable = 2;
  std::size_t early_exit_min_traces = 1000;
};

/// Per-byte replay outcome — mirrors core::FullKeyByteResult.
struct ReplayFullKeyByte {
  std::uint8_t correct = 0;
  std::uint8_t recovered = 0;
  bool success = false;
  bool early_exited = false;
  std::size_t traces = 0;
  std::vector<double> final_max_abs_corr;
  std::vector<sca::CpaProgressPoint> progress;
  sca::MtdResult mtd;
};

struct ReplayFullKeyResult {
  std::array<ReplayFullKeyByte, sca::MultiByteCpa::kBytes> bytes;
  crypto::Block recovered_last_round_key{};
  bool success = false;  ///< all sixteen bytes recovered
  std::size_t bytes_early_exited = 0;
  std::size_t traces = 0;
  double replay_seconds = 0.0;
};

/// Replay a fused full-key store, reproducing the live engines'
/// per-byte early-exit decisions (same margin, stability and minimum-
/// trace gates, evaluated at the same checkpoints).
ReplayFullKeyResult replay_fullkey(const TraceStoreReader& store,
                                   const std::vector<std::size_t>& checkpoints,
                                   const crypto::Block& true_last_round_key,
                                   const ReplayFullKeyOptions& opts = {},
                                   obs::CampaignObserver* observer = nullptr);

struct ReplayTvlaResult {
  double max_abs_t = 0.0;
  bool leakage_detected = false;
  std::size_t fixed_traces = 0;
  std::size_t random_traces = 0;
  std::size_t traces = 0;
  double replay_seconds = 0.0;
};

/// Replay a TVLA store: trace 2k is the fixed population, 2k+1 the
/// random one (the interleaving run_tvla captures), streamed through
/// Welch's t-test in stored order so the online moments match the live
/// pass bit for bit.
ReplayTvlaResult replay_tvla(const TraceStoreReader& store,
                             obs::CampaignObserver* observer = nullptr);

}  // namespace slm::store
