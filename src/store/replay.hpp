// Replay a captured `SLMTRC1` store through the CPA / TVLA folds
// without regenerating a single trace (docs/STORE.md). The class labels
// come from the stored ciphertexts alone (sca::LastRoundBitModel never
// consults the plaintext), the readings feed the accumulators straight
// out of the mmap, and the folds run at the same checkpoint trace
// counts as the live engines — so by the partition-invariance argument
// in sca/cpa.hpp every progress point, rank, and correlation is
// bit-identical to the live capture that wrote the store.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/aes128.hpp"
#include "sca/cpa.hpp"
#include "sca/mtd.hpp"
#include "store/trace_store.hpp"

namespace slm::obs {
class CampaignObserver;
}

namespace slm::store {

/// Replay of a single-byte campaign store — mirrors the fields of
/// core::CampaignResult that replay can reproduce.
struct ReplayAttackResult {
  std::vector<sca::CpaProgressPoint> progress;
  sca::MtdResult mtd;
  std::uint8_t correct_guess = 0;
  std::uint8_t recovered_guess = 0;
  bool key_recovered = false;
  std::size_t traces = 0;
  double replay_seconds = 0.0;
};

/// Fold a byte-campaign store at the given checkpoint trace counts.
/// `checkpoints` must be the schedule the live campaign used
/// (core::checkpoint_schedule); entries past the store's trace count
/// are ignored, exactly as the live loop never reaches them.
ReplayAttackResult replay_attack(const TraceStoreReader& store,
                                 const std::vector<std::size_t>& checkpoints,
                                 std::uint8_t correct_guess,
                                 obs::CampaignObserver* observer = nullptr);

/// Early-exit knobs, defaults matching core::FullKeyConfig.
struct ReplayFullKeyOptions {
  bool early_exit = true;
  double early_exit_margin = 0.08;
  std::size_t early_exit_stable = 2;
  std::size_t early_exit_min_traces = 1000;
};

/// Per-byte replay outcome — mirrors core::FullKeyByteResult.
struct ReplayFullKeyByte {
  std::uint8_t correct = 0;
  std::uint8_t recovered = 0;
  bool success = false;
  bool early_exited = false;
  std::size_t traces = 0;
  std::vector<double> final_max_abs_corr;
  std::vector<sca::CpaProgressPoint> progress;
  sca::MtdResult mtd;
};

struct ReplayFullKeyResult {
  std::array<ReplayFullKeyByte, sca::MultiByteCpa::kBytes> bytes;
  crypto::Block recovered_last_round_key{};
  bool success = false;  ///< all sixteen bytes recovered
  std::size_t bytes_early_exited = 0;
  std::size_t traces = 0;
  double replay_seconds = 0.0;
};

/// Replay a fused full-key store, reproducing the live engines'
/// per-byte early-exit decisions (same margin, stability and minimum-
/// trace gates, evaluated at the same checkpoints).
ReplayFullKeyResult replay_fullkey(const TraceStoreReader& store,
                                   const std::vector<std::size_t>& checkpoints,
                                   const crypto::Block& true_last_round_key,
                                   const ReplayFullKeyOptions& opts = {},
                                   obs::CampaignObserver* observer = nullptr);

struct ReplayTvlaResult {
  double max_abs_t = 0.0;
  bool leakage_detected = false;
  std::size_t fixed_traces = 0;
  std::size_t random_traces = 0;
  std::size_t traces = 0;
  double replay_seconds = 0.0;
};

/// Replay a TVLA store: trace 2k is the fixed population, 2k+1 the
/// random one (the interleaving run_tvla captures), streamed through
/// Welch's t-test in stored order so the online moments match the live
/// pass bit for bit.
ReplayTvlaResult replay_tvla(const TraceStoreReader& store,
                             obs::CampaignObserver* observer = nullptr);

/// Which analyses the fused one-pass sweep feeds. The defaults run
/// everything the store kind supports.
struct ReplayAllOptions {
  bool attack = true;   ///< target-byte CPA progress + MTD
  bool fullkey = true;  ///< all sixteen last-round bytes, early exit
  bool tvla = true;     ///< Welch t-test (see ReplayAllResult::tvla)
  ReplayFullKeyOptions fullkey_opts;
};

/// Results of one fused sweep. Only the sections whose `has_*` flag is
/// set are populated; each is bit-identical to what the corresponding
/// single-analysis replay_* computes for the same store (the attack
/// fold comes from MultiByteCpa::fold(target_byte), which the
/// multibyte_cpa_test equivalence property pins to a standalone
/// XorClassCpa). For attack-kind stores the TVLA section is a
/// *specific* t-test: populations partitioned by the target leakage
/// model's predicted class bit (fixed_traces = bit 0, random_traces =
/// bit 1) instead of the capture-interleaved fixed/random split a
/// kTvla store holds.
struct ReplayAllResult {
  bool has_attack = false;
  bool has_fullkey = false;
  bool has_tvla = false;
  ReplayAttackResult attack;
  ReplayFullKeyResult fullkey;
  ReplayTvlaResult tvla;
  std::size_t traces = 0;
  double replay_seconds = 0.0;  ///< the whole one-pass sweep
};

/// Fused one-pass replay (docs/STORE.md): sweep the mmap'd store ONCE
/// and feed every requested fold from the same cache-resident column
/// blocks, instead of one sweep per analysis. Attack-kind stores
/// (kByteCampaign and kFullKey — the labels derive from the stored
/// ciphertexts alone) support all three analyses; kTvla stores support
/// only the tvla section (parity-partitioned, exactly replay_tvla) and
/// throw StoreMismatch if attack or fullkey is requested. `checkpoints`
/// is only consulted by the attack/fullkey sections.
ReplayAllResult replay_all(const TraceStoreReader& store,
                           const std::vector<std::size_t>& checkpoints,
                           const crypto::Block& true_last_round_key,
                           const ReplayAllOptions& opts = {},
                           obs::CampaignObserver* observer = nullptr);

}  // namespace slm::store
