#include "store/replay.hpp"

#include <algorithm>
#include <cstring>

#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "sca/model.hpp"
#include "sca/tvla.hpp"

namespace slm::store {

namespace {

// Walk [from, to) in store-chunk-aligned blocks. Any regrouping of the
// add_block calls lands on bit-identical accumulator sums (partition
// invariance, sca/cpa.hpp), so chunk-sized blocks are purely a cache
// choice — the chunk-boundary-invariance test pins that the results do
// not depend on it.
template <typename AddBlock>
void feed_blocks(const TraceStoreReader& store, std::size_t from,
                 std::size_t to, AddBlock&& add) {
  const std::size_t chunk = store.chunk_traces();
  std::size_t t = from;
  while (t < to) {
    const std::size_t end = std::min(to, (t / chunk + 1) * chunk);
    add(t, end - t);
    t = end;
  }
}

void require_kind(const TraceStoreReader& store, StoreKind want) {
  if (store.kind() == want) return;
  throw StoreMismatch("store replay: '" + store.path() + "' holds a " +
                      std::string(store_kind_name(store.kind())) +
                      " capture, not a " + store_kind_name(want) + " one");
}

void note_replay(obs::CampaignObserver* ob, const char* kind,
                 std::size_t traces, double seconds) {
  if (ob == nullptr) return;
  ob->metrics().add("slm.store.traces_replayed",
                    static_cast<double>(traces));
  ob->metrics().observe("slm.store.replay_seconds", seconds);
  ob->event("store_replay",
            obs::JsonWriter()
                .field("kind", kind)
                .field("traces", static_cast<std::uint64_t>(traces))
                .field("seconds", seconds));
}

}  // namespace

ReplayAttackResult replay_attack(const TraceStoreReader& store,
                                 const std::vector<std::size_t>& checkpoints,
                                 std::uint8_t correct_guess,
                                 obs::CampaignObserver* observer) {
  require_kind(store, StoreKind::kByteCampaign);
  const double t0 = obs::monotonic_seconds();
  const StoreIdentity& id = store.identity();
  const std::size_t n = store.trace_count();

  sca::LastRoundBitModel model(id.target_key_byte, id.target_bit);
  sca::XorClassCpa cls(store.samples());
  std::vector<std::uint8_t> v(store.chunk_traces());
  std::vector<std::uint8_t> b(store.chunk_traces());
  const auto add = [&](std::size_t first, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const crypto::Block ct = store.ciphertext(first + i);
      v[i] = model.class_value(ct);
      b[i] = model.class_bit(ct);
    }
    cls.add_block(v.data(), b.data(), store.readings(first), count);
  };

  ReplayAttackResult result;
  result.correct_guess = correct_guess;
  std::size_t done = 0;
  for (const std::size_t cp : checkpoints) {
    // The live loop only folds at checkpoints it actually reaches, in
    // ascending order; everything else never produces a progress point.
    if (cp == 0 || cp > n || cp < done) continue;
    feed_blocks(store, done, cp, add);
    done = cp;
    const sca::CpaEngine folded = cls.fold(model.pattern().data());
    result.progress.push_back(sca::snapshot_progress(folded, correct_guess));
  }
  if (result.progress.empty() || result.progress.back().traces != n) {
    feed_blocks(store, done, n, add);
    done = n;
    const sca::CpaEngine folded = cls.fold(model.pattern().data());
    result.progress.push_back(sca::snapshot_progress(folded, correct_guess));
  }

  result.traces = n;
  result.recovered_guess =
      static_cast<std::uint8_t>(result.progress.back().best_guess);
  result.key_recovered = result.recovered_guess == correct_guess;
  result.mtd = sca::estimate_mtd(result.progress);
  result.replay_seconds = obs::monotonic_seconds() - t0;
  note_replay(observer, "attack", n, result.replay_seconds);
  return result;
}

ReplayFullKeyResult replay_fullkey(const TraceStoreReader& store,
                                   const std::vector<std::size_t>& checkpoints,
                                   const crypto::Block& true_last_round_key,
                                   const ReplayFullKeyOptions& opts,
                                   obs::CampaignObserver* observer) {
  require_kind(store, StoreKind::kFullKey);
  const double t0 = obs::monotonic_seconds();
  constexpr std::size_t kBytes = sca::MultiByteCpa::kBytes;
  const StoreIdentity& id = store.identity();
  const std::size_t n = store.trace_count();

  std::vector<sca::LastRoundBitModel> models;
  models.reserve(kBytes);
  for (std::size_t j = 0; j < kBytes; ++j) {
    models.emplace_back(j, id.target_bit);
  }

  ReplayFullKeyResult result;
  for (std::size_t j = 0; j < kBytes; ++j) {
    result.bytes[j].correct = models[j].correct_guess(true_last_round_key);
  }

  sca::MultiByteCpa acc(store.samples());
  std::vector<std::uint8_t> clsv(store.chunk_traces() * kBytes);
  std::vector<std::uint8_t> clsb(store.chunk_traces() * kBytes);
  const auto add = [&](std::size_t first, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const crypto::Block ct = store.ciphertext(first + i);
      for (std::size_t j = 0; j < kBytes; ++j) {
        clsv[i * kBytes + j] = models[j].class_value(ct);
        clsb[i * kBytes + j] = models[j].class_bit(ct);
      }
    }
    acc.add_block(clsv.data(), clsb.data(), store.readings(first), count);
  };

  // Per-byte early-exit bookkeeping, identical to the live engines'.
  struct ByteState {
    bool converged = false;
    std::size_t stable = 0;
    std::size_t prev_best = 256;  // 256 = no previous checkpoint yet
  };
  std::array<ByteState, kBytes> state;

  std::size_t done = 0;
  const auto fold_at = [&](std::size_t traces_done) {
    for (std::size_t j = 0; j < kBytes; ++j) {
      if (state[j].converged) continue;
      const sca::CpaEngine folded = acc.fold(j, models[j].pattern().data());
      sca::CpaProgressPoint p =
          sca::snapshot_progress(folded, result.bytes[j].correct);
      const double margin = sca::winner_margin(p);
      const bool qualify = opts.early_exit &&
                           traces_done >= opts.early_exit_min_traces &&
                           state[j].prev_best == p.best_guess &&
                           margin >= opts.early_exit_margin;
      if (qualify) {
        ++state[j].stable;
      } else {
        state[j].stable = 0;
      }
      state[j].prev_best = p.best_guess;
      result.bytes[j].progress.push_back(std::move(p));
      if (qualify && state[j].stable >= opts.early_exit_stable) {
        const sca::CpaProgressPoint& fp = result.bytes[j].progress.back();
        ReplayFullKeyByte& br = result.bytes[j];
        state[j].converged = true;
        br.recovered = static_cast<std::uint8_t>(fp.best_guess);
        br.traces = traces_done;
        br.final_max_abs_corr = fp.max_abs_corr;
        br.early_exited = true;
        br.success = br.recovered == br.correct;
      }
    }
  };

  for (const std::size_t cp : checkpoints) {
    if (cp == 0 || cp > n || cp < done) continue;
    feed_blocks(store, done, cp, add);
    done = cp;
    fold_at(cp);
  }
  // The live capture pass always runs to the full trace count even when
  // every byte froze early; feed the tail so unfrozen folds see all n.
  feed_blocks(store, done, n, add);
  done = n;

  for (std::size_t j = 0; j < kBytes; ++j) {
    ReplayFullKeyByte& br = result.bytes[j];
    if (!state[j].converged) {
      const sca::CpaEngine folded = acc.fold(j, models[j].pattern().data());
      if (br.progress.empty() || br.progress.back().traces != n) {
        br.progress.push_back(sca::snapshot_progress(folded, br.correct));
      }
      const sca::CpaProgressPoint& fp = br.progress.back();
      br.recovered = static_cast<std::uint8_t>(fp.best_guess);
      br.traces = n;
      br.final_max_abs_corr = fp.max_abs_corr;
      br.success = br.recovered == br.correct;
    }
    br.mtd = sca::estimate_mtd(br.progress);
    result.recovered_last_round_key[j] = br.recovered;
    if (br.early_exited) ++result.bytes_early_exited;
  }
  result.success = std::all_of(result.bytes.begin(), result.bytes.end(),
                               [](const ReplayFullKeyByte& br) {
                                 return br.success;
                               });
  result.traces = n;
  result.replay_seconds = obs::monotonic_seconds() - t0;
  note_replay(observer, "full-key", n, result.replay_seconds);
  return result;
}

ReplayTvlaResult replay_tvla(const TraceStoreReader& store,
                             obs::CampaignObserver* observer) {
  require_kind(store, StoreKind::kTvla);
  const double t0 = obs::monotonic_seconds();
  const std::size_t n = store.trace_count();

  sca::WelchTTest ttest(store.samples());
  std::vector<double> y(store.samples());
  for (std::size_t t = 0; t < n; ++t) {
    std::memcpy(y.data(), store.readings(t), y.size() * sizeof(double));
    ttest.add((t % 2) == 0, y);
  }

  ReplayTvlaResult result;
  result.max_abs_t = ttest.max_abs_t();
  result.leakage_detected = ttest.leakage_detected();
  result.fixed_traces = ttest.fixed_traces();
  result.random_traces = ttest.random_traces();
  result.traces = n;
  result.replay_seconds = obs::monotonic_seconds() - t0;
  note_replay(observer, "tvla", n, result.replay_seconds);
  return result;
}

}  // namespace slm::store
