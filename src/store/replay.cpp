#include "store/replay.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "sca/model.hpp"
#include "sca/tvla.hpp"

namespace slm::store {

namespace {

// Walk [from, to) in store-chunk-aligned blocks. Any regrouping of the
// add_block calls lands on bit-identical accumulator sums (partition
// invariance, sca/cpa.hpp), so chunk-sized blocks are purely a cache
// choice — the chunk-boundary-invariance test pins that the results do
// not depend on it.
template <typename AddBlock>
void feed_blocks(const TraceStoreReader& store, std::size_t from,
                 std::size_t to, AddBlock&& add) {
  const std::size_t chunk = store.chunk_traces();
  std::size_t t = from;
  while (t < to) {
    const std::size_t end = std::min(to, (t / chunk + 1) * chunk);
    add(t, end - t);
    t = end;
  }
}

void require_kind(const TraceStoreReader& store, StoreKind want) {
  if (store.kind() == want) return;
  throw StoreMismatch("store replay: '" + store.path() + "' holds a " +
                      std::string(store_kind_name(store.kind())) +
                      " capture, not a " + store_kind_name(want) + " one");
}

void note_replay(obs::CampaignObserver* ob, const char* kind,
                 std::size_t traces, double seconds) {
  if (ob == nullptr) return;
  ob->metrics().add("slm.store.traces_replayed",
                    static_cast<double>(traces));
  ob->metrics().observe("slm.store.replay_seconds", seconds);
  ob->event("store_replay",
            obs::JsonWriter()
                .field("kind", kind)
                .field("traces", static_cast<std::uint64_t>(traces))
                .field("seconds", seconds));
}

// Per-byte fold + early-exit machine shared by replay_fullkey and the
// fused replay_all: folds one MultiByteCpa at checkpoint trace counts
// with the live fused engine's per-byte decisions (same margin,
// stability and minimum-trace gates), then finalizes the unconverged
// bytes at the full trace count.
class FullKeyFolder {
 public:
  FullKeyFolder(const std::vector<sca::LastRoundBitModel>* models,
                const ReplayFullKeyOptions* opts, ReplayFullKeyResult* out)
      : models_(models), opts_(opts), out_(out) {}

  void fold_at(const sca::MultiByteCpa& acc, std::size_t traces_done) {
    for (std::size_t j = 0; j < sca::MultiByteCpa::kBytes; ++j) {
      if (state_[j].converged) continue;
      const sca::CpaEngine folded =
          acc.fold(j, (*models_)[j].pattern().data());
      sca::CpaProgressPoint p =
          sca::snapshot_progress(folded, out_->bytes[j].correct);
      const double margin = sca::winner_margin(p);
      const bool qualify = opts_->early_exit &&
                           traces_done >= opts_->early_exit_min_traces &&
                           state_[j].prev_best == p.best_guess &&
                           margin >= opts_->early_exit_margin;
      if (qualify) {
        ++state_[j].stable;
      } else {
        state_[j].stable = 0;
      }
      state_[j].prev_best = p.best_guess;
      out_->bytes[j].progress.push_back(std::move(p));
      if (qualify && state_[j].stable >= opts_->early_exit_stable) {
        const sca::CpaProgressPoint& fp = out_->bytes[j].progress.back();
        ReplayFullKeyByte& br = out_->bytes[j];
        state_[j].converged = true;
        br.recovered = static_cast<std::uint8_t>(fp.best_guess);
        br.traces = traces_done;
        br.final_max_abs_corr = fp.max_abs_corr;
        br.early_exited = true;
        br.success = br.recovered == br.correct;
      }
    }
  }

  /// Final folds at the full trace count `n`, then key assembly.
  void finish(const sca::MultiByteCpa& acc, std::size_t n) {
    for (std::size_t j = 0; j < sca::MultiByteCpa::kBytes; ++j) {
      ReplayFullKeyByte& br = out_->bytes[j];
      if (!state_[j].converged) {
        const sca::CpaEngine folded =
            acc.fold(j, (*models_)[j].pattern().data());
        if (br.progress.empty() || br.progress.back().traces != n) {
          br.progress.push_back(sca::snapshot_progress(folded, br.correct));
        }
        const sca::CpaProgressPoint& fp = br.progress.back();
        br.recovered = static_cast<std::uint8_t>(fp.best_guess);
        br.traces = n;
        br.final_max_abs_corr = fp.max_abs_corr;
        br.success = br.recovered == br.correct;
      }
      br.mtd = sca::estimate_mtd(br.progress);
      out_->recovered_last_round_key[j] = br.recovered;
      if (br.early_exited) ++out_->bytes_early_exited;
    }
    out_->success = std::all_of(out_->bytes.begin(), out_->bytes.end(),
                                [](const ReplayFullKeyByte& br) {
                                  return br.success;
                                });
    out_->traces = n;
  }

 private:
  struct ByteState {
    bool converged = false;
    std::size_t stable = 0;
    std::size_t prev_best = 256;  // 256 = no previous checkpoint yet
  };
  const std::vector<sca::LastRoundBitModel>* models_;
  const ReplayFullKeyOptions* opts_;
  ReplayFullKeyResult* out_;
  std::array<ByteState, sca::MultiByteCpa::kBytes> state_{};
};

std::vector<sca::LastRoundBitModel> byte_models(std::uint64_t target_bit) {
  std::vector<sca::LastRoundBitModel> models;
  models.reserve(sca::MultiByteCpa::kBytes);
  for (std::size_t j = 0; j < sca::MultiByteCpa::kBytes; ++j) {
    models.emplace_back(j, target_bit);
  }
  return models;
}

}  // namespace

ReplayAttackResult replay_attack(const TraceStoreReader& store,
                                 const std::vector<std::size_t>& checkpoints,
                                 std::uint8_t correct_guess,
                                 obs::CampaignObserver* observer) {
  require_kind(store, StoreKind::kByteCampaign);
  const double t0 = obs::monotonic_seconds();
  const StoreIdentity& id = store.identity();
  const std::size_t n = store.trace_count();

  sca::LastRoundBitModel model(id.target_key_byte, id.target_bit);
  sca::XorClassCpa cls(store.samples());
  std::vector<std::uint8_t> v(store.chunk_traces());
  std::vector<std::uint8_t> b(store.chunk_traces());
  const auto add = [&](std::size_t first, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const crypto::Block ct = store.ciphertext(first + i);
      v[i] = model.class_value(ct);
      b[i] = model.class_bit(ct);
    }
    cls.add_block(v.data(), b.data(), store.readings(first), count);
  };

  ReplayAttackResult result;
  result.correct_guess = correct_guess;
  std::size_t done = 0;
  for (const std::size_t cp : checkpoints) {
    // The live loop only folds at checkpoints it actually reaches, in
    // ascending order; everything else never produces a progress point.
    if (cp == 0 || cp > n || cp < done) continue;
    feed_blocks(store, done, cp, add);
    done = cp;
    const sca::CpaEngine folded = cls.fold(model.pattern().data());
    result.progress.push_back(sca::snapshot_progress(folded, correct_guess));
  }
  if (result.progress.empty() || result.progress.back().traces != n) {
    feed_blocks(store, done, n, add);
    done = n;
    const sca::CpaEngine folded = cls.fold(model.pattern().data());
    result.progress.push_back(sca::snapshot_progress(folded, correct_guess));
  }

  result.traces = n;
  result.recovered_guess =
      static_cast<std::uint8_t>(result.progress.back().best_guess);
  result.key_recovered = result.recovered_guess == correct_guess;
  result.mtd = sca::estimate_mtd(result.progress);
  result.replay_seconds = obs::monotonic_seconds() - t0;
  note_replay(observer, "attack", n, result.replay_seconds);
  return result;
}

ReplayFullKeyResult replay_fullkey(const TraceStoreReader& store,
                                   const std::vector<std::size_t>& checkpoints,
                                   const crypto::Block& true_last_round_key,
                                   const ReplayFullKeyOptions& opts,
                                   obs::CampaignObserver* observer) {
  require_kind(store, StoreKind::kFullKey);
  const double t0 = obs::monotonic_seconds();
  constexpr std::size_t kBytes = sca::MultiByteCpa::kBytes;
  const StoreIdentity& id = store.identity();
  const std::size_t n = store.trace_count();

  const std::vector<sca::LastRoundBitModel> models = byte_models(id.target_bit);

  ReplayFullKeyResult result;
  for (std::size_t j = 0; j < kBytes; ++j) {
    result.bytes[j].correct = models[j].correct_guess(true_last_round_key);
  }

  sca::MultiByteCpa acc(store.samples());
  std::vector<std::uint8_t> clsv(store.chunk_traces() * kBytes);
  std::vector<std::uint8_t> clsb(store.chunk_traces() * kBytes);
  const auto add = [&](std::size_t first, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const crypto::Block ct = store.ciphertext(first + i);
      for (std::size_t j = 0; j < kBytes; ++j) {
        clsv[i * kBytes + j] = models[j].class_value(ct);
        clsb[i * kBytes + j] = models[j].class_bit(ct);
      }
    }
    acc.add_block(clsv.data(), clsb.data(), store.readings(first), count);
  };

  FullKeyFolder folder(&models, &opts, &result);
  std::size_t done = 0;
  for (const std::size_t cp : checkpoints) {
    if (cp == 0 || cp > n || cp < done) continue;
    feed_blocks(store, done, cp, add);
    done = cp;
    folder.fold_at(acc, cp);
  }
  // The live capture pass always runs to the full trace count even when
  // every byte froze early; feed the tail so unfrozen folds see all n.
  feed_blocks(store, done, n, add);
  folder.finish(acc, n);
  result.replay_seconds = obs::monotonic_seconds() - t0;
  note_replay(observer, "full-key", n, result.replay_seconds);
  return result;
}

ReplayTvlaResult replay_tvla(const TraceStoreReader& store,
                             obs::CampaignObserver* observer) {
  require_kind(store, StoreKind::kTvla);
  const double t0 = obs::monotonic_seconds();
  const std::size_t n = store.trace_count();

  sca::WelchTTest ttest(store.samples());
  std::vector<double> y(store.samples());
  for (std::size_t t = 0; t < n; ++t) {
    std::memcpy(y.data(), store.readings(t), y.size() * sizeof(double));
    ttest.add((t % 2) == 0, y);
  }

  ReplayTvlaResult result;
  result.max_abs_t = ttest.max_abs_t();
  result.leakage_detected = ttest.leakage_detected();
  result.fixed_traces = ttest.fixed_traces();
  result.random_traces = ttest.random_traces();
  result.traces = n;
  result.replay_seconds = obs::monotonic_seconds() - t0;
  note_replay(observer, "tvla", n, result.replay_seconds);
  return result;
}

ReplayAllResult replay_all(const TraceStoreReader& store,
                           const std::vector<std::size_t>& checkpoints,
                           const crypto::Block& true_last_round_key,
                           const ReplayAllOptions& opts,
                           obs::CampaignObserver* observer) {
  const double t0 = obs::monotonic_seconds();
  ReplayAllResult result;
  const std::size_t n = store.trace_count();
  result.traces = n;

  if (store.kind() == StoreKind::kTvla) {
    if (opts.attack || opts.fullkey) {
      throw StoreMismatch("store replay_all: '" + store.path() +
                          "' holds a tvla capture — only the tvla analysis "
                          "applies; drop attack/fullkey");
    }
    if (opts.tvla) {
      result.tvla = replay_tvla(store, observer);
      result.has_tvla = true;
    }
    result.replay_seconds = obs::monotonic_seconds() - t0;
    return result;
  }
  if (!opts.attack && !opts.fullkey && !opts.tvla) return result;

  // Attack-kind store (kByteCampaign or kFullKey): the class labels for
  // every byte derive from the stored ciphertexts alone, so one sweep
  // can feed all three folds from the same cache-resident blocks. The
  // attack fold comes from the fused 16-byte tile when fullkey rides
  // along (MultiByteCpa::fold(target) is bit-identical to a standalone
  // XorClassCpa — multibyte_cpa_test), and from a plain XorClassCpa
  // otherwise, so an attack-only fused pass never pays the 16x tile.
  constexpr std::size_t kBytes = sca::MultiByteCpa::kBytes;
  const StoreIdentity& id = store.identity();
  const std::size_t target = static_cast<std::size_t>(id.target_key_byte);
  const std::vector<sca::LastRoundBitModel> models = byte_models(id.target_bit);

  const bool want_mb = opts.fullkey;
  const bool want_xor = opts.attack && !opts.fullkey;

  std::optional<sca::MultiByteCpa> acc;
  std::optional<sca::XorClassCpa> cls;
  std::optional<sca::WelchTTest> ttest;
  if (want_mb) acc.emplace(store.samples());
  if (want_xor) cls.emplace(store.samples());
  if (opts.tvla) ttest.emplace(store.samples());

  std::vector<std::uint8_t> mbv(want_mb ? store.chunk_traces() * kBytes : 0);
  std::vector<std::uint8_t> mbb(want_mb ? store.chunk_traces() * kBytes : 0);
  std::vector<std::uint8_t> v(want_mb ? 0 : store.chunk_traces());
  std::vector<std::uint8_t> b(want_mb ? 0 : store.chunk_traces());
  const auto add = [&](std::size_t first, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const crypto::Block ct = store.ciphertext(first + i);
      std::uint8_t bit = 0;
      if (want_mb) {
        for (std::size_t j = 0; j < kBytes; ++j) {
          mbv[i * kBytes + j] = models[j].class_value(ct);
          mbb[i * kBytes + j] = models[j].class_bit(ct);
        }
        bit = mbb[i * kBytes + target];
      } else {
        v[i] = models[target].class_value(ct);
        b[i] = models[target].class_bit(ct);
        bit = b[i];
      }
      // Specific t-test: populations partitioned by the target model's
      // predicted class bit, fed zero-copy out of the mapping.
      if (ttest) ttest->add(bit == 0, store.readings(first + i));
    }
    if (acc) acc->add_block(mbv.data(), mbb.data(), store.readings(first),
                            count);
    if (cls) cls->add_block(v.data(), b.data(), store.readings(first), count);
  };

  if (opts.attack) {
    result.has_attack = true;
    result.attack.correct_guess =
        models[target].correct_guess(true_last_round_key);
  }
  if (opts.fullkey) {
    result.has_fullkey = true;
    for (std::size_t j = 0; j < kBytes; ++j) {
      result.fullkey.bytes[j].correct =
          models[j].correct_guess(true_last_round_key);
    }
  }
  const auto fold_attack = [&]() {
    const sca::CpaEngine folded =
        want_mb ? acc->fold(target, models[target].pattern().data())
                : cls->fold(models[target].pattern().data());
    result.attack.progress.push_back(
        sca::snapshot_progress(folded, result.attack.correct_guess));
  };

  FullKeyFolder folder(&models, &opts.fullkey_opts, &result.fullkey);
  std::size_t done = 0;
  if (opts.attack || opts.fullkey) {
    for (const std::size_t cp : checkpoints) {
      if (cp == 0 || cp > n || cp < done) continue;
      feed_blocks(store, done, cp, add);
      done = cp;
      if (opts.attack) fold_attack();
      if (opts.fullkey) folder.fold_at(*acc, cp);
    }
  }
  feed_blocks(store, done, n, add);

  if (opts.attack) {
    if (result.attack.progress.empty() ||
        result.attack.progress.back().traces != n) {
      fold_attack();
    }
    result.attack.traces = n;
    result.attack.recovered_guess =
        static_cast<std::uint8_t>(result.attack.progress.back().best_guess);
    result.attack.key_recovered =
        result.attack.recovered_guess == result.attack.correct_guess;
    result.attack.mtd = sca::estimate_mtd(result.attack.progress);
  }
  if (opts.fullkey) folder.finish(*acc, n);
  if (opts.tvla) {
    result.has_tvla = true;
    result.tvla.max_abs_t = ttest->max_abs_t();
    result.tvla.leakage_detected = ttest->leakage_detected();
    result.tvla.fixed_traces = ttest->fixed_traces();
    result.tvla.random_traces = ttest->random_traces();
    result.tvla.traces = n;
  }

  result.replay_seconds = obs::monotonic_seconds() - t0;
  // Every populated section shares the one-pass sweep's wall time.
  result.attack.replay_seconds = result.replay_seconds;
  result.fullkey.replay_seconds = result.replay_seconds;
  result.tvla.replay_seconds = result.replay_seconds;
  note_replay(observer, "fused", n, result.replay_seconds);
  return result;
}

}  // namespace slm::store
