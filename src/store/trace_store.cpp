#include "store/trace_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace slm::store {

namespace {

// Fixed header size inside the framed payload: identity (48 bytes) +
// layout (28 bytes) + 4 pad bytes. A multiple of 8, and the framed
// envelope is 24 bytes, so the readings column lands 8-byte aligned in
// the file — the alignment the zero-copy mmap reader relies on.
constexpr std::size_t kHeaderBytes = 80;
constexpr std::size_t kIndexEntryBytes = 8 + 8 + 4;
constexpr std::size_t kEnvelopeBytes = 24;
constexpr std::size_t kBlockBytes = 16;

std::size_t chunk_count_for(std::size_t traces, std::size_t chunk_traces) {
  return traces == 0 ? 0 : (traces + chunk_traces - 1) / chunk_traces;
}

}  // namespace

const char* store_kind_name(StoreKind k) {
  switch (k) {
    case StoreKind::kByteCampaign: return "byte-campaign";
    case StoreKind::kFullKey: return "full-key";
    case StoreKind::kTvla: return "tvla";
  }
  return "unknown";
}

void StoreIdentity::save(ByteWriter& out) const {
  out.put_u8(kind);
  out.put_u8(circuit);
  out.put_u8(mode);
  out.put_u8(rng_contract);
  out.put_u64(seed);
  out.put_u64(trace_count);
  out.put_u64(samples);
  out.put_u64(target_key_byte);
  out.put_u64(target_bit);
  out.put_u32(config_hash);
}

StoreIdentity StoreIdentity::load(ByteReader& in) {
  StoreIdentity id;
  id.kind = in.get_u8();
  id.circuit = in.get_u8();
  id.mode = in.get_u8();
  id.rng_contract = in.get_u8();
  id.seed = in.get_u64();
  id.trace_count = in.get_u64();
  id.samples = in.get_u64();
  id.target_key_byte = in.get_u64();
  id.target_bit = in.get_u64();
  id.config_hash = in.get_u32();
  return id;
}

std::uint32_t StoreIdentity::fingerprint() const {
  ByteWriter w;
  save(w);
  return crc32(w.bytes().data(), w.size());
}

bool StoreIdentity::operator==(const StoreIdentity& other) const {
  return kind == other.kind && circuit == other.circuit &&
         mode == other.mode && rng_contract == other.rng_contract &&
         seed == other.seed && trace_count == other.trace_count &&
         samples == other.samples &&
         target_key_byte == other.target_key_byte &&
         target_bit == other.target_bit &&
         config_hash == other.config_hash;
}

void StoreIdentity::require_compatible(const StoreIdentity& expected,
                                       const std::string& context) const {
  if (*this == expected) return;
  std::string diff;
  auto field = [&diff](const char* name, std::uint64_t got,
                       std::uint64_t want) {
    if (got == want) return;
    if (!diff.empty()) diff += ", ";
    diff += std::string(name) + " " + std::to_string(got) + " != " +
            std::to_string(want);
  };
  field("kind", kind, expected.kind);
  field("circuit", circuit, expected.circuit);
  field("mode", mode, expected.mode);
  field("rng_contract", rng_contract, expected.rng_contract);
  field("seed", seed, expected.seed);
  field("trace_count", trace_count, expected.trace_count);
  field("samples", samples, expected.samples);
  field("target_key_byte", target_key_byte, expected.target_key_byte);
  field("target_bit", target_bit, expected.target_bit);
  field("config_hash", config_hash, expected.config_hash);
  throw StoreMismatch(context + ": store fingerprint mismatch (" + diff +
                      ") — this store was captured under a different "
                      "campaign configuration");
}

TraceStoreWriter::TraceStoreWriter(std::string path,
                                   const StoreIdentity& identity,
                                   std::size_t chunk_traces)
    : path_(std::move(path)),
      identity_(identity),
      chunk_traces_(chunk_traces) {
  SLM_REQUIRE(!path_.empty(), "trace store: empty output path");
  SLM_REQUIRE(chunk_traces_ > 0, "trace store: chunk_traces must be > 0");
  SLM_REQUIRE(identity_.trace_count > 0 && identity_.samples > 0,
              "trace store: identity needs trace_count and samples");
  readings_.resize(identity_.trace_count * identity_.samples);
  pt_.resize(identity_.trace_count * kBlockBytes);
  ct_.resize(identity_.trace_count * kBlockBytes);
}

void TraceStoreWriter::record_meta(std::size_t trace, const crypto::Block& pt,
                                   const crypto::Block& ct) {
  std::memcpy(pt_.data() + trace * kBlockBytes, pt.data(), kBlockBytes);
  std::memcpy(ct_.data() + trace * kBlockBytes, ct.data(), kBlockBytes);
}

void TraceStoreWriter::record_readings(std::size_t trace, const double* y) {
  std::memcpy(readings_.data() + trace * identity_.samples, y,
              identity_.samples * sizeof(double));
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

void TraceStoreWriter::record_readings_block(std::size_t first_trace,
                                             const double* y,
                                             std::size_t count) {
  std::memcpy(readings_.data() + first_trace * identity_.samples, y,
              count * identity_.samples * sizeof(double));
  recorded_.fetch_add(count, std::memory_order_relaxed);
}

TraceStoreWriter::FinalizeStats TraceStoreWriter::finalize() {
  SLM_REQUIRE(!finalized_, "trace store: finalize() called twice");
  SLM_REQUIRE(recorded() == identity_.trace_count,
              "trace store: campaign recorded " + std::to_string(recorded()) +
                  " of " + std::to_string(identity_.trace_count) +
                  " traces — refusing to write an incomplete store");
  finalized_ = true;

  const std::size_t n = identity_.trace_count;
  const std::size_t samples = identity_.samples;
  const std::size_t chunks = chunk_count_for(n, chunk_traces_);
  const auto* readings_bytes =
      reinterpret_cast<const std::uint8_t*>(readings_.data());

  ByteWriter payload;
  identity_.save(payload);
  payload.put_u64(chunk_traces_);
  payload.put_u64(chunks);
  payload.put_u64(resolved_single_bit_);
  payload.put_u32(capture_threads_);
  payload.put_u32(0);  // pad to kHeaderBytes (8-aligns the readings column)
  SLM_ASSERT(payload.size() == kHeaderBytes, "trace store header size drift");

  payload.put_bytes(readings_bytes, readings_.size() * sizeof(double));
  payload.put_bytes(pt_.data(), pt_.size());
  payload.put_bytes(ct_.data(), ct_.size());

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t first = c * chunk_traces_;
    const std::size_t rows = std::min(chunk_traces_, n - first);
    std::uint32_t crc = crc32_update(
        0, readings_bytes + first * samples * sizeof(double),
        rows * samples * sizeof(double));
    crc = crc32_update(crc, pt_.data() + first * kBlockBytes,
                       rows * kBlockBytes);
    crc = crc32_update(crc, ct_.data() + first * kBlockBytes,
                       rows * kBlockBytes);
    payload.put_u64(first);
    payload.put_u64(rows);
    payload.put_u32(crc);
  }

  FinalizeStats stats;
  stats.bytes_written = write_framed_file(path_, kStoreMagic, kStoreVersion,
                                          payload.bytes(), "trace store");
  stats.traces = n;
  stats.chunks = chunks;
  return stats;
}

TraceStoreReader::TraceStoreReader(const std::string& path) : path_(path) {
  try {
    open_and_validate();
  } catch (const StoreFormatError&) {
    if (map_ != nullptr) ::munmap(map_, map_bytes_);
    map_ = nullptr;
    throw;
  } catch (const Error& e) {
    // ByteReader overruns and other library errors all mean the same
    // thing here: the file is not a usable store.
    if (map_ != nullptr) ::munmap(map_, map_bytes_);
    map_ = nullptr;
    throw StoreFormatError(std::string("trace store: malformed '") + path_ +
                           "': " + e.what());
  }
}

TraceStoreReader::~TraceStoreReader() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

crypto::Block TraceStoreReader::plaintext(std::size_t trace) const {
  crypto::Block b;
  std::memcpy(b.data(), plaintext_ptr(trace), kBlockBytes);
  return b;
}

crypto::Block TraceStoreReader::ciphertext(std::size_t trace) const {
  crypto::Block b;
  std::memcpy(b.data(), ciphertext_ptr(trace), kBlockBytes);
  return b;
}

void TraceStoreReader::open_and_validate() {
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) {
    throw StoreFormatError("trace store: cannot open '" + path_ + "'");
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw StoreFormatError("trace store: cannot stat '" + path_ + "'");
  }
  map_bytes_ = static_cast<std::size_t>(st.st_size);
  if (map_bytes_ < kEnvelopeBytes) {
    ::close(fd);
    throw StoreFormatError("trace store: truncated envelope in '" + path_ +
                           "'");
  }
  void* m = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (m == MAP_FAILED) {
    map_ = nullptr;
    throw StoreFormatError("trace store: mmap failed for '" + path_ + "'");
  }
  map_ = m;

  const auto* base = static_cast<const std::uint8_t*>(map_);
  if (std::memcmp(base, kStoreMagic, 8) != 0) {
    throw StoreFormatError("trace store: bad magic in '" + path_ + "'");
  }
  ByteReader env(base + 8, kEnvelopeBytes - 8);
  const std::uint32_t version = env.get_u32();
  if (version != kStoreVersion) {
    throw StoreFormatError("trace store: unsupported version " +
                           std::to_string(version) + " in '" + path_ +
                           "' (expected " + std::to_string(kStoreVersion) +
                           ")");
  }
  const std::uint64_t length = env.get_u64();
  const std::uint32_t stored_crc = env.get_u32();
  if (length != map_bytes_ - kEnvelopeBytes) {
    throw StoreFormatError("trace store: truncated payload in '" + path_ +
                           "'");
  }
  const std::uint8_t* payload = base + kEnvelopeBytes;
  if (crc32(payload, length) != stored_crc) {
    throw StoreFormatError("trace store: CRC mismatch in '" + path_ +
                           "' — store is corrupt");
  }
  if (length < kHeaderBytes) {
    throw StoreFormatError("trace store: short header in '" + path_ + "'");
  }

  ByteReader header(payload, kHeaderBytes);
  identity_ = StoreIdentity::load(header);
  chunk_traces_ = header.get_u64();
  chunk_count_ = header.get_u64();
  resolved_single_bit_ = header.get_u64();
  capture_threads_ = header.get_u32();
  (void)header.get_u32();  // pad

  const std::size_t n = identity_.trace_count;
  const std::size_t samples = identity_.samples;
  if (n == 0 || samples == 0 || chunk_traces_ == 0 ||
      chunk_count_ != chunk_count_for(n, chunk_traces_)) {
    throw StoreFormatError("trace store: malformed header in '" + path_ +
                           "'");
  }

  const std::size_t readings_off = kHeaderBytes;
  const std::size_t pt_off = readings_off + n * samples * sizeof(double);
  const std::size_t ct_off = pt_off + n * kBlockBytes;
  const std::size_t index_off = ct_off + n * kBlockBytes;
  const std::size_t total = index_off + chunk_count_ * kIndexEntryBytes;
  if (total != length) {
    throw StoreFormatError(
        "trace store: column extents do not match payload size in '" + path_ +
        "'");
  }

  readings_ = reinterpret_cast<const double*>(payload + readings_off);
  pt_ = payload + pt_off;
  ct_ = payload + ct_off;
  if (reinterpret_cast<std::uintptr_t>(readings_) % alignof(double) != 0) {
    throw StoreFormatError("trace store: misaligned readings column in '" +
                           path_ + "'");
  }

  ByteReader index(payload + index_off, chunk_count_ * kIndexEntryBytes);
  const auto* readings_bytes = payload + readings_off;
  for (std::size_t c = 0; c < chunk_count_; ++c) {
    const std::uint64_t first = index.get_u64();
    const std::uint64_t rows = index.get_u64();
    const std::uint32_t chunk_crc = index.get_u32();
    if (first != c * chunk_traces_ ||
        rows != std::min<std::uint64_t>(chunk_traces_, n - first)) {
      throw StoreFormatError("trace store: malformed chunk index in '" +
                             path_ + "'");
    }
    std::uint32_t crc = crc32_update(
        0, readings_bytes + first * samples * sizeof(double),
        rows * samples * sizeof(double));
    crc = crc32_update(crc, pt_ + first * kBlockBytes, rows * kBlockBytes);
    crc = crc32_update(crc, ct_ + first * kBlockBytes, rows * kBlockBytes);
    if (crc != chunk_crc) {
      throw StoreFormatError("trace store: chunk " + std::to_string(c) +
                             " CRC mismatch in '" + path_ +
                             "' — store is corrupt");
    }
  }
}

}  // namespace slm::store
