// Capture-once, replay-many trace store (docs/STORE.md): a CRC'd,
// chunked, columnar `SLMTRC1` file holding one campaign's sensor
// readings, plaintexts and ciphertexts, framed by the same
// `common/binio` envelope as `SLMCKPT1` checkpoints and `SLMSNAP1`
// snapshots. The header carries a fingerprint of
// (seed, rng_contract, trace_count, attack/sensor config hash) so a
// replayed attack refuses stores captured under a different campaign,
// and the readings column is 8-byte aligned in the file so the mmap
// reader hands `const double*` rows straight to
// `sca::XorClassCpa::add_block` / `sca::MultiByteCpa::add_block` with
// zero copies. Because the CPA accumulators are exact integer sums
// (see sca/cpa.hpp's partition-invariance note), folding the stored
// readings reproduces the live campaign's results bit-for-bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "common/error.hpp"
#include "crypto/aes128.hpp"

namespace slm::store {

/// `SLMTRC1` wire magic: seven ASCII characters NUL-padded to the
/// envelope's eight bytes (siblings `SLMCKPT1`/`SLMSNAP1` use all
/// eight).
inline constexpr char kStoreMagic[] = "SLMTRC1";

/// `SLMTRC1` wire version.
inline constexpr std::uint32_t kStoreVersion = 1;

/// A store file is structurally unusable: missing, truncated, wrong
/// magic/version, envelope or chunk CRC failure, or a malformed header.
/// CLI exit code 13.
class StoreFormatError : public Error {
 public:
  using Error::Error;
};

/// A structurally valid store whose fingerprint does not match the
/// campaign the replay was configured for. CLI exit code 14.
class StoreMismatch : public Error {
 public:
  using Error::Error;
};

/// What the capture pass recorded; replay dispatch keys on this.
enum class StoreKind : std::uint8_t {
  kByteCampaign = 0,  ///< single-byte CPA campaign (CpaCampaign::run)
  kFullKey = 1,       ///< fused all-bytes capture (run_fullkey)
  kTvla = 2,          ///< fixed-vs-random TVLA populations (run_tvla)
};

const char* store_kind_name(StoreKind k);

/// The campaign fingerprint stamped into every store header. Two
/// captures agree on every reading iff their identities agree (under
/// contract v2; v1 readings additionally depend on the capturing
/// thread count, which the layout records informationally).
struct StoreIdentity {
  std::uint8_t kind = 0;          ///< StoreKind
  std::uint8_t circuit = 0;       ///< core::BenignCircuit value
  std::uint8_t mode = 0;          ///< core::SensorMode value
  std::uint8_t rng_contract = 0;  ///< resolved contract: 1 or 2
  std::uint64_t seed = 0;
  std::uint64_t trace_count = 0;
  std::uint64_t samples = 0;
  std::uint64_t target_key_byte = 0;
  std::uint64_t target_bit = 0;
  std::uint32_t config_hash = 0;  ///< CRC-32 of the canonical config blob

  /// Canonical serialization — the exact bytes the header stores.
  void save(ByteWriter& out) const;
  static StoreIdentity load(ByteReader& in);

  /// CRC-32 over the canonical serialization.
  std::uint32_t fingerprint() const;

  bool operator==(const StoreIdentity& other) const;
  bool operator!=(const StoreIdentity& other) const {
    return !(*this == other);
  }

  /// Throws StoreMismatch naming every differing field.
  void require_compatible(const StoreIdentity& expected,
                          const std::string& context) const;
};

/// Accumulates one campaign's columns in memory and writes the framed
/// `SLMTRC1` file on finalize() (temp file + atomic rename, same
/// crash-safety discipline as checkpoints). Column slabs are sized up
/// front from `identity.trace_count`, so concurrent shards may record
/// disjoint trace indices without synchronization; only the recorded-
/// readings counter is atomic (it gates finalize on completeness).
class TraceStoreWriter {
 public:
  static constexpr std::size_t kDefaultChunkTraces = 4096;

  TraceStoreWriter(std::string path, const StoreIdentity& identity,
                   std::size_t chunk_traces = kDefaultChunkTraces);

  const std::string& path() const { return path_; }
  const StoreIdentity& identity() const { return identity_; }
  std::size_t chunk_traces() const { return chunk_traces_; }

  /// Informational header fields (do not participate in the fingerprint).
  void set_resolved_single_bit(std::uint64_t bit) {
    resolved_single_bit_ = bit;
  }
  void set_capture_threads(std::uint32_t threads) {
    capture_threads_ = threads;
  }

  /// Record one trace's plaintext and ciphertext.
  void record_meta(std::size_t trace, const crypto::Block& pt,
                   const crypto::Block& ct);

  /// Record one trace's sensor readings (samples() doubles).
  void record_readings(std::size_t trace, const double* y);

  /// Record `count` consecutive traces' readings from a trace-major
  /// block (the engines' staged yblk buffers append straight here).
  void record_readings_block(std::size_t first_trace, const double* y,
                             std::size_t count);

  /// Readings recorded so far (meta is assumed to ride along).
  std::size_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  struct FinalizeStats {
    std::size_t bytes_written = 0;
    std::size_t traces = 0;
    std::size_t chunks = 0;
  };

  /// Assemble header + columns + chunk index and write the framed file
  /// atomically. Requires every trace recorded; a campaign that halts
  /// early simply destroys the writer and leaves no file behind.
  FinalizeStats finalize();

 private:
  std::string path_;
  StoreIdentity identity_;
  std::size_t chunk_traces_;
  std::uint64_t resolved_single_bit_ = 0;
  std::uint32_t capture_threads_ = 1;
  std::vector<double> readings_;     // trace_count x samples, trace-major
  std::vector<std::uint8_t> pt_;     // trace_count x 16
  std::vector<std::uint8_t> ct_;     // trace_count x 16
  std::atomic<std::size_t> recorded_{0};
  bool finalized_ = false;
};

/// Zero-copy mmap reader. The constructor validates the whole file —
/// envelope magic/version/length/CRC, header shape, column extents and
/// every chunk CRC — so replay loops can trust raw pointers into the
/// mapping afterwards. readings(t) is 8-byte aligned and points into
/// the mapping; no reading is ever copied on the replay path.
class TraceStoreReader {
 public:
  explicit TraceStoreReader(const std::string& path);
  ~TraceStoreReader();

  TraceStoreReader(const TraceStoreReader&) = delete;
  TraceStoreReader& operator=(const TraceStoreReader&) = delete;

  const std::string& path() const { return path_; }
  const StoreIdentity& identity() const { return identity_; }
  StoreKind kind() const { return static_cast<StoreKind>(identity_.kind); }
  std::size_t trace_count() const { return identity_.trace_count; }
  std::size_t samples() const { return identity_.samples; }
  std::size_t chunk_traces() const { return chunk_traces_; }
  std::size_t chunk_count() const { return chunk_count_; }
  std::uint64_t resolved_single_bit() const { return resolved_single_bit_; }
  std::uint32_t capture_threads() const { return capture_threads_; }
  std::size_t file_bytes() const { return map_bytes_; }

  /// Trace `t`'s samples() readings, straight out of the mapping.
  const double* readings(std::size_t trace) const {
    return readings_ + trace * identity_.samples;
  }

  const std::uint8_t* plaintext_ptr(std::size_t trace) const {
    return pt_ + trace * 16;
  }
  const std::uint8_t* ciphertext_ptr(std::size_t trace) const {
    return ct_ + trace * 16;
  }

  crypto::Block plaintext(std::size_t trace) const;
  crypto::Block ciphertext(std::size_t trace) const;

 private:
  void open_and_validate();

  std::string path_;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  StoreIdentity identity_;
  std::size_t chunk_traces_ = 0;
  std::size_t chunk_count_ = 0;
  std::uint64_t resolved_single_bit_ = 0;
  std::uint32_t capture_threads_ = 1;
  const double* readings_ = nullptr;
  const std::uint8_t* pt_ = nullptr;
  const std::uint8_t* ct_ = nullptr;
};

}  // namespace slm::store
