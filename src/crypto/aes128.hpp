// AES-128 reference implementation with the introspection hooks a
// side-channel study needs: per-round states, round keys, S-box/inverse
// S-box access, and the ShiftRows position maps used by last-round CPA
// hypothesis models.
//
// The state is kept as a flat 16-byte array in FIPS-197 order: input byte
// i lands at state[i]; interpreting i = 4*col + row, columns are the
// 32-bit words a word-serial datapath processes per cycle.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace slm::crypto {

using Block = std::array<std::uint8_t, 16>;

/// Parse a 32-hex-digit string into a block (throws on malformed input).
Block block_from_hex(const std::string& hex);
std::string block_to_hex(const Block& b);

class Aes128 {
 public:
  explicit Aes128(const Block& key);

  Block encrypt(const Block& plaintext) const;
  Block decrypt(const Block& ciphertext) const;

  /// States visible at the state register of a hardware implementation:
  /// element 0 is the state after the initial AddRoundKey, element r
  /// (1..10) the state after round r. Element 10 equals the ciphertext.
  std::array<Block, 11> encrypt_states(const Block& plaintext) const;

  /// Round key r (0..10).
  const Block& round_key(std::size_t r) const;

  /// Last round key — the target of the paper's CPA.
  const Block& last_round_key() const { return round_keys_[10]; }

  static std::uint8_t sbox(std::uint8_t x);
  static std::uint8_t inv_sbox(std::uint8_t x);

  /// ShiftRows position map: the byte at position `pos` before ShiftRows
  /// appears at shift_rows_pos(pos) afterwards.
  static std::size_t shift_rows_pos(std::size_t pos);

  /// Inverse map: the byte at `pos` after ShiftRows came from
  /// inv_shift_rows_pos(pos).
  static std::size_t inv_shift_rows_pos(std::size_t pos);

 private:
  std::array<Block, 11> round_keys_{};
  /// Round keys repacked as column words (4 per round, byte r of column c
  /// at bits 8r) for the T-table encrypt rounds.
  std::array<std::uint32_t, 44> round_key_words_{};
};

/// Invert the AES-128 key schedule: reconstruct the master key from any
/// single round key. This is what makes the paper's last-round-key CPA a
/// full key recovery — once k10 is known, the cipher is broken.
Block recover_master_key(const Block& round_key, std::size_t round = 10);

}  // namespace slm::crypto
