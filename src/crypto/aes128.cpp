#include "crypto/aes128.hpp"

#include "common/error.hpp"

namespace slm::crypto {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

constexpr std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  while (b != 0) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

// Fused SubBytes+MixColumns tables for the encrypt rounds. A state column
// is packed as a 32-bit word with byte r (FIPS position 4c+r) at bits
// 8r..8r+7; Te_r[x] holds the column contribution of a post-ShiftRows
// byte a_r = S(x): byte i of Te_r[x] is gmul(S(x), M[i][r]) for the
// MixColumns matrix M. All arithmetic is exact GF(2^8), so the states
// are bit-identical to the byte-wise reference (the NIST vectors in
// aes128_test pin this).
struct TeTables {
  std::uint32_t t[4][256];
};

constexpr TeTables make_te_tables() {
  TeTables te{};
  constexpr std::uint8_t m[4][4] = {
      {2, 3, 1, 1}, {1, 2, 3, 1}, {1, 1, 2, 3}, {3, 1, 1, 2}};
  for (int x = 0; x < 256; ++x) {
    const std::uint8_t s = kSbox[x];
    for (int r = 0; r < 4; ++r) {
      std::uint32_t w = 0;
      for (int i = 0; i < 4; ++i) {
        w |= static_cast<std::uint32_t>(gmul(s, m[i][r])) << (8 * i);
      }
      te.t[r][x] = w;
    }
  }
  return te;
}

constexpr TeTables kTe = make_te_tables();

constexpr std::uint32_t pack_column(const Block& b, std::size_t c) {
  return static_cast<std::uint32_t>(b[4 * c + 0]) |
         (static_cast<std::uint32_t>(b[4 * c + 1]) << 8) |
         (static_cast<std::uint32_t>(b[4 * c + 2]) << 16) |
         (static_cast<std::uint32_t>(b[4 * c + 3]) << 24);
}

void unpack_columns(const std::uint32_t w[4], Block& b) {
  for (std::size_t c = 0; c < 4; ++c) {
    b[4 * c + 0] = static_cast<std::uint8_t>(w[c]);
    b[4 * c + 1] = static_cast<std::uint8_t>(w[c] >> 8);
    b[4 * c + 2] = static_cast<std::uint8_t>(w[c] >> 16);
    b[4 * c + 3] = static_cast<std::uint8_t>(w[c] >> 24);
  }
}

void inv_sub_bytes(Block& s) {
  for (auto& b : s) b = kInvSbox[b];
}

void inv_shift_rows(Block& s) {
  Block t = s;
  for (std::size_t pos = 0; pos < 16; ++pos) {
    t[pos] = s[Aes128::shift_rows_pos(pos)];
  }
  s = t;
}

void inv_mix_columns(Block& s) {
  for (std::size_t c = 0; c < 4; ++c) {
    const std::uint8_t a0 = s[4 * c + 0], a1 = s[4 * c + 1],
                       a2 = s[4 * c + 2], a3 = s[4 * c + 3];
    s[4 * c + 0] = static_cast<std::uint8_t>(gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^
                                             gmul(a2, 0x0d) ^ gmul(a3, 0x09));
    s[4 * c + 1] = static_cast<std::uint8_t>(gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^
                                             gmul(a2, 0x0b) ^ gmul(a3, 0x0d));
    s[4 * c + 2] = static_cast<std::uint8_t>(gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^
                                             gmul(a2, 0x0e) ^ gmul(a3, 0x0b));
    s[4 * c + 3] = static_cast<std::uint8_t>(gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^
                                             gmul(a2, 0x09) ^ gmul(a3, 0x0e));
  }
}

void add_round_key(Block& s, const Block& k) {
  for (std::size_t i = 0; i < 16; ++i) s[i] ^= k[i];
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Block block_from_hex(const std::string& hex) {
  SLM_REQUIRE(hex.size() == 32, "block_from_hex: need 32 hex digits");
  Block b{};
  for (std::size_t i = 0; i < 16; ++i) {
    const int hi = hex_digit(hex[2 * i]);
    const int lo = hex_digit(hex[2 * i + 1]);
    SLM_REQUIRE(hi >= 0 && lo >= 0, "block_from_hex: invalid hex digit");
    b[i] = static_cast<std::uint8_t>(hi * 16 + lo);
  }
  return b;
}

std::string block_to_hex(const Block& b) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(32);
  for (std::uint8_t byte : b) {
    s.push_back(digits[byte >> 4]);
    s.push_back(digits[byte & 0xf]);
  }
  return s;
}

Aes128::Aes128(const Block& key) {
  round_keys_[0] = key;
  for (std::size_t r = 1; r <= 10; ++r) {
    const Block& prev = round_keys_[r - 1];
    Block& rk = round_keys_[r];
    // First word: RotWord + SubWord + Rcon.
    rk[0] = static_cast<std::uint8_t>(prev[0] ^ kSbox[prev[13]] ^
                                      kRcon[r - 1]);
    rk[1] = static_cast<std::uint8_t>(prev[1] ^ kSbox[prev[14]]);
    rk[2] = static_cast<std::uint8_t>(prev[2] ^ kSbox[prev[15]]);
    rk[3] = static_cast<std::uint8_t>(prev[3] ^ kSbox[prev[12]]);
    for (std::size_t i = 4; i < 16; ++i) {
      rk[i] = static_cast<std::uint8_t>(prev[i] ^ rk[i - 4]);
    }
  }
  for (std::size_t r = 0; r <= 10; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      round_key_words_[4 * r + c] = pack_column(round_keys_[r], c);
    }
  }
}

Block Aes128::encrypt(const Block& plaintext) const {
  return encrypt_states(plaintext)[10];
}

std::array<Block, 11> Aes128::encrypt_states(const Block& plaintext) const {
  std::array<Block, 11> states;
  std::uint32_t w[4];
  for (std::size_t c = 0; c < 4; ++c) {
    w[c] = pack_column(plaintext, c) ^ round_key_words_[c];
  }
  unpack_columns(w, states[0]);
  for (std::size_t r = 1; r <= 9; ++r) {
    // Output column c gathers post-ShiftRows byte a_r from pre-round byte
    // s[4*((c+r)%4)+r] (row r rotates left by r), i.e. byte r of word
    // w[(c+r)%4].
    std::uint32_t t[4];
    for (std::size_t c = 0; c < 4; ++c) {
      t[c] = kTe.t[0][w[c] & 0xff] ^
             kTe.t[1][(w[(c + 1) & 3] >> 8) & 0xff] ^
             kTe.t[2][(w[(c + 2) & 3] >> 16) & 0xff] ^
             kTe.t[3][(w[(c + 3) & 3] >> 24) & 0xff] ^
             round_key_words_[4 * r + c];
    }
    w[0] = t[0];
    w[1] = t[1];
    w[2] = t[2];
    w[3] = t[3];
    unpack_columns(w, states[r]);
  }
  // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
  Block& out = states[10];
  const Block& k10 = round_keys_[10];
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t r = 0; r < 4; ++r) {
      out[4 * c + r] = static_cast<std::uint8_t>(
          kSbox[(w[(c + r) & 3] >> (8 * r)) & 0xff] ^ k10[4 * c + r]);
    }
  }
  return states;
}

Block Aes128::decrypt(const Block& ciphertext) const {
  Block s = ciphertext;
  add_round_key(s, round_keys_[10]);
  inv_shift_rows(s);
  inv_sub_bytes(s);
  for (std::size_t r = 9; r >= 1; --r) {
    add_round_key(s, round_keys_[r]);
    inv_mix_columns(s);
    inv_shift_rows(s);
    inv_sub_bytes(s);
  }
  add_round_key(s, round_keys_[0]);
  return s;
}

const Block& Aes128::round_key(std::size_t r) const {
  SLM_REQUIRE(r <= 10, "round_key: r out of range");
  return round_keys_[r];
}

std::uint8_t Aes128::sbox(std::uint8_t x) { return kSbox[x]; }
std::uint8_t Aes128::inv_sbox(std::uint8_t x) { return kInvSbox[x]; }

std::size_t Aes128::shift_rows_pos(std::size_t pos) {
  // pos = 4*col + row; row r rotates left by r columns.
  const std::size_t row = pos % 4;
  const std::size_t col = pos / 4;
  const std::size_t new_col = (col + 4 - row) % 4;
  return 4 * new_col + row;
}

std::size_t Aes128::inv_shift_rows_pos(std::size_t pos) {
  const std::size_t row = pos % 4;
  const std::size_t col = pos / 4;
  const std::size_t old_col = (col + row) % 4;
  return 4 * old_col + row;
}

Block recover_master_key(const Block& round_key, std::size_t round) {
  SLM_REQUIRE(round <= 10, "recover_master_key: round out of range");
  Block rk = round_key;
  // Walk the schedule backwards: given round key r, words w[4r..4r+3],
  //   prev[3] = w[3] ^ w[2], prev[2] = w[2] ^ w[1], prev[1] = w[1] ^ w[0]
  //   prev[0] = w[0] ^ SubWord(RotWord(prev[3])) ^ Rcon[r-1]
  for (std::size_t r = round; r >= 1; --r) {
    Block prev;
    for (std::size_t w = 3; w >= 1; --w) {
      for (std::size_t i = 0; i < 4; ++i) {
        prev[4 * w + i] =
            static_cast<std::uint8_t>(rk[4 * w + i] ^ rk[4 * (w - 1) + i]);
      }
    }
    prev[0] = static_cast<std::uint8_t>(rk[0] ^ kSbox[prev[13]] ^
                                        kRcon[r - 1]);
    prev[1] = static_cast<std::uint8_t>(rk[1] ^ kSbox[prev[14]]);
    prev[2] = static_cast<std::uint8_t>(rk[2] ^ kSbox[prev[15]]);
    prev[3] = static_cast<std::uint8_t>(rk[3] ^ kSbox[prev[12]]);
    rk = prev;
  }
  return rk;
}

}  // namespace slm::crypto
