// Cycle-accurate power model of the paper's AES hardware: a 32-bit
// datapath with four parallel S-boxes, so each round occupies four clock
// cycles (one state column per cycle) at 100 MHz.
//
// The model emits, per clock cycle, the Hamming distance of the state
// register column being overwritten — the canonical CMOS switching-power
// proxy — plus a data-independent base current. This is exactly the
// leakage the paper's last-round CPA exploits: at the cycle where column
// c of round 10 is written, the register flips state9[col c] -> ct[col c].
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "crypto/aes128.hpp"

namespace slm::crypto {

struct DatapathConfig {
  double clock_mhz = 100.0;

  /// First-order boolean masking (hiding-in-the-datapath countermeasure,
  /// cf. the paper's related work [23, 26-28]): the state register holds
  /// two shares (state ^ m, m) with a fresh mask every round, so the
  /// register Hamming distance decorrelates from any unmasked state bit.
  /// Ciphertexts are unchanged; only the leakage model differs.
  bool masked = false;
  std::uint64_t mask_seed = 0x3a5c;

  /// Dynamic current per register bit flip (A per HD unit).
  double current_per_hd_a = 2.0e-3;

  /// Data-independent per-cycle current while the core is busy (A).
  double base_current_a = 0.080;

  /// Register state at the start of an encryption. Real hardware keeps
  /// the previous ciphertext; the model defaults to that behaviour.
  bool carry_previous_state = true;
};

class AesDatapathModel {
 public:
  /// Cycles per encryption: 4 load/ARK cycles + 10 rounds x 4 cycles.
  static constexpr std::size_t kCycles = 44;

  AesDatapathModel(const Block& key, const DatapathConfig& cfg);

  struct Encryption {
    Block plaintext{};
    Block ciphertext{};
    /// Hamming distance switched in each cycle (state register only).
    std::array<std::uint32_t, kCycles> cycle_hd{};
    /// Total current per cycle (base + HD-proportional), amps.
    std::array<double, kCycles> cycle_current{};
  };

  /// Run one encryption, updating the internal register state.
  Encryption encrypt(const Block& plaintext);

  /// Cycle index in which column `col` (0..3) of round `round` (1..10)
  /// is written; round 0 means the initial AddRoundKey/load.
  static std::size_t cycle_of(std::size_t round, std::size_t col);

  /// The cycle carrying the last-round leakage for state byte position
  /// `pos` (0..15): the write of column pos/4 in round 10.
  static std::size_t leakage_cycle_for_byte(std::size_t pos);

  double cycle_period_ns() const { return 1000.0 / cfg_.clock_mhz; }
  const DatapathConfig& config() const { return cfg_; }
  const Aes128& cipher() const { return aes_; }

  /// The mutable half of the model: the state register shares (which
  /// carry across encryptions and feed the Hamming-distance leakage) and
  /// the masking RNG position. Campaign checkpoints snapshot and restore
  /// this so a resumed campaign sees the identical register history.
  struct RegisterSnapshot {
    Block register_state{};
    Block register_mask{};
    std::array<std::uint64_t, 4> mask_rng_state{};
  };
  RegisterSnapshot register_snapshot() const {
    return RegisterSnapshot{register_state_, register_mask_,
                            mask_rng_.state()};
  }
  void restore_registers(const RegisterSnapshot& snap) {
    register_state_ = snap.register_state;
    register_mask_ = snap.register_mask;
    mask_rng_.set_state(snap.mask_rng_state);
  }

  /// Stateless variant for determinism contract v2 (DESIGN.md §12): run
  /// one encryption against a caller-owned register snapshot, advancing
  /// `regs` in place and leaving the model's internal state untouched.
  /// Mask draws come from the counter-keyed per-trace stream
  /// trace_stream(mask_seed, kTraceDomainMask, trace_index), so any lane
  /// can compute any trace's leakage without cross-trace RNG ordering.
  /// The per-cycle arithmetic is the exact expression sequence encrypt()
  /// evaluates, so with matching register/mask inputs the two paths are
  /// bit-identical.
  Encryption encrypt_stateless(const Block& plaintext,
                               std::uint64_t trace_index,
                               RegisterSnapshot& regs) const;

  /// The register snapshot left behind by trace `trace_index` under
  /// contract v2 (registers start zeroed at trace 0). Because every
  /// register share is fully overwritten during rounds 0..10, the
  /// outgoing snapshot depends only on (plaintext, trace_index) — this
  /// is what lets sharded/pipelined engines derive a chunk's incoming
  /// register state from the previous trace alone.
  RegisterSnapshot registers_after(const Block& plaintext,
                                   std::uint64_t trace_index) const;

 private:
  Encryption encrypt_core(const Block& plaintext, Block& reg, Block& mask_reg,
                          Xoshiro256& mask_rng) const;

  Aes128 aes_;
  DatapathConfig cfg_;
  Block register_state_{};   // share 0; survives across encryptions
  Block register_mask_{};    // share 1 (masked mode only)
  Xoshiro256 mask_rng_{0};
};

}  // namespace slm::crypto
