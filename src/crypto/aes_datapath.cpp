#include "crypto/aes_datapath.hpp"

#include <cstring>

#include "common/bitvec.hpp"
#include "common/error.hpp"

namespace slm::crypto {

namespace {

std::uint32_t column_hd(const Block& a, const Block& b, std::size_t col) {
  // One 32-bit XOR + popcount over the packed column (endianness is
  // irrelevant for a Hamming distance).
  std::uint32_t wa;
  std::uint32_t wb;
  std::memcpy(&wa, a.data() + 4 * col, 4);
  std::memcpy(&wb, b.data() + 4 * col, 4);
  return static_cast<std::uint32_t>(
      slm::hamming_weight(static_cast<std::uint64_t>(wa ^ wb)));
}

}  // namespace

AesDatapathModel::AesDatapathModel(const Block& key, const DatapathConfig& cfg)
    : aes_(key), cfg_(cfg), mask_rng_(cfg.mask_seed) {
  SLM_REQUIRE(cfg_.clock_mhz > 0, "AesDatapathModel: bad clock");
  register_state_.fill(0);
  register_mask_.fill(0);
}

AesDatapathModel::Encryption AesDatapathModel::encrypt_core(
    const Block& plaintext, Block& reg, Block& mask_reg,
    Xoshiro256& mask_rng) const {
  Encryption enc;
  enc.plaintext = plaintext;

  const auto states = aes_.encrypt_states(plaintext);
  enc.ciphertext = states[10];

  // Per-round state written into the register. Unmasked: the state
  // itself. Masked: share 0 = state ^ m_round with a fresh mask every
  // round; share 1 (the mask register) leaks alongside.
  for (std::size_t round = 0; round <= 10; ++round) {
    Block target = states[round];
    Block mask{};
    if (cfg_.masked) {
      for (auto& m : mask) m = static_cast<std::uint8_t>(mask_rng.next());
      for (std::size_t i = 0; i < 16; ++i) target[i] ^= mask[i];
    }
    for (std::size_t col = 0; col < 4; ++col) {
      const std::size_t cyc = cycle_of(round, col);
      enc.cycle_hd[cyc] = column_hd(reg, target, col);
      if (cfg_.masked) {
        enc.cycle_hd[cyc] += column_hd(mask_reg, mask, col);
      }
      std::memcpy(reg.data() + 4 * col, target.data() + 4 * col, 4);
      if (cfg_.masked) {
        std::memcpy(mask_reg.data() + 4 * col, mask.data() + 4 * col, 4);
      }
    }
  }

  for (std::size_t c = 0; c < kCycles; ++c) {
    enc.cycle_current[c] =
        cfg_.base_current_a + cfg_.current_per_hd_a * enc.cycle_hd[c];
  }
  return enc;
}

AesDatapathModel::Encryption AesDatapathModel::encrypt(const Block& plaintext) {
  Block reg = cfg_.carry_previous_state ? register_state_ : Block{};
  Block mask_reg = cfg_.carry_previous_state ? register_mask_ : Block{};
  Encryption enc = encrypt_core(plaintext, reg, mask_reg, mask_rng_);
  register_state_ = reg;
  register_mask_ = mask_reg;
  return enc;
}

AesDatapathModel::Encryption AesDatapathModel::encrypt_stateless(
    const Block& plaintext, std::uint64_t trace_index,
    RegisterSnapshot& regs) const {
  Block reg = cfg_.carry_previous_state ? regs.register_state : Block{};
  Block mask_reg = cfg_.carry_previous_state ? regs.register_mask : Block{};
  Xoshiro256 mask_rng =
      Xoshiro256::trace_stream(cfg_.mask_seed, kTraceDomainMask, trace_index);
  Encryption enc = encrypt_core(plaintext, reg, mask_reg, mask_rng);
  regs.register_state = reg;
  regs.register_mask = mask_reg;
  // The per-trace stream is re-derived for every trace, so the snapshot
  // does not need a meaningful stream position; keep it zeroed.
  regs.mask_rng_state = {};
  return enc;
}

AesDatapathModel::RegisterSnapshot AesDatapathModel::registers_after(
    const Block& plaintext, std::uint64_t trace_index) const {
  // The state register is fully overwritten through rounds 0..10, so the
  // outgoing snapshot is independent of the incoming one: a zero snapshot
  // yields the same result as the true predecessor state.
  RegisterSnapshot regs{};
  (void)encrypt_stateless(plaintext, trace_index, regs);
  return regs;
}

std::size_t AesDatapathModel::cycle_of(std::size_t round, std::size_t col) {
  SLM_REQUIRE(round <= 10 && col < 4, "cycle_of: bad round/col");
  return round * 4 + col;
}

std::size_t AesDatapathModel::leakage_cycle_for_byte(std::size_t pos) {
  SLM_REQUIRE(pos < 16, "leakage_cycle_for_byte: bad position");
  return cycle_of(10, pos / 4);
}

}  // namespace slm::crypto
