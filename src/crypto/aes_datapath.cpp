#include "crypto/aes_datapath.hpp"

#include "common/bitvec.hpp"
#include "common/error.hpp"

namespace slm::crypto {

namespace {

std::uint32_t column_hd(const Block& a, const Block& b, std::size_t col) {
  std::uint32_t hd = 0;
  for (std::size_t r = 0; r < 4; ++r) {
    hd += static_cast<std::uint32_t>(
        slm::hamming_weight(static_cast<std::uint64_t>(a[4 * col + r]) ^
                            static_cast<std::uint64_t>(b[4 * col + r])));
  }
  return hd;
}

}  // namespace

AesDatapathModel::AesDatapathModel(const Block& key, const DatapathConfig& cfg)
    : aes_(key), cfg_(cfg), mask_rng_(cfg.mask_seed) {
  SLM_REQUIRE(cfg_.clock_mhz > 0, "AesDatapathModel: bad clock");
  register_state_.fill(0);
  register_mask_.fill(0);
}

AesDatapathModel::Encryption AesDatapathModel::encrypt(const Block& plaintext) {
  Encryption enc;
  enc.plaintext = plaintext;

  const auto states = aes_.encrypt_states(plaintext);
  enc.ciphertext = states[10];

  Block reg = cfg_.carry_previous_state ? register_state_ : Block{};
  Block mask_reg = cfg_.carry_previous_state ? register_mask_ : Block{};

  // Per-round state written into the register. Unmasked: the state
  // itself. Masked: share 0 = state ^ m_round with a fresh mask every
  // round; share 1 (the mask register) leaks alongside.
  for (std::size_t round = 0; round <= 10; ++round) {
    Block target = states[round];
    Block mask{};
    if (cfg_.masked) {
      for (auto& m : mask) m = static_cast<std::uint8_t>(mask_rng_.next());
      for (std::size_t i = 0; i < 16; ++i) target[i] ^= mask[i];
    }
    for (std::size_t col = 0; col < 4; ++col) {
      const std::size_t cyc = cycle_of(round, col);
      enc.cycle_hd[cyc] = column_hd(reg, target, col);
      if (cfg_.masked) {
        enc.cycle_hd[cyc] += column_hd(mask_reg, mask, col);
      }
      for (std::size_t r = 0; r < 4; ++r) {
        reg[4 * col + r] = target[4 * col + r];
        if (cfg_.masked) mask_reg[4 * col + r] = mask[4 * col + r];
      }
    }
  }

  for (std::size_t c = 0; c < kCycles; ++c) {
    enc.cycle_current[c] =
        cfg_.base_current_a + cfg_.current_per_hd_a * enc.cycle_hd[c];
  }

  register_state_ = reg;
  register_mask_ = mask_reg;
  return enc;
}

std::size_t AesDatapathModel::cycle_of(std::size_t round, std::size_t col) {
  SLM_REQUIRE(round <= 10 && col < 4, "cycle_of: bad round/col");
  return round * 4 + col;
}

std::size_t AesDatapathModel::leakage_cycle_for_byte(std::size_t pos) {
  SLM_REQUIRE(pos < 16, "leakage_cycle_for_byte: bad position");
  return cycle_of(10, pos / 4);
}

}  // namespace slm::crypto
