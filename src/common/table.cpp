#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace slm {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SLM_REQUIRE(!headers_.empty(), "TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  SLM_REQUIRE(cells.size() == headers_.size(),
              "TextTable::add_row: column count mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c != 0) rule += "  ";
    rule += std::string(widths[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string format_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

}  // namespace slm
