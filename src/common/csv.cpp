#include "common/csv.hpp"

#include <istream>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace slm {

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  SLM_REQUIRE(!header_written_, "CsvWriter: header already written");
  SLM_REQUIRE(!columns.empty(), "CsvWriter: empty header");
  columns_ = columns.size();
  header_written_ = true;
  write_cells(columns);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (columns_ == 0) {
    columns_ = cells.size();
  }
  SLM_REQUIRE(cells.size() == columns_, "CsvWriter: column count mismatch");
  write_cells(cells);
}

void CsvWriter::write_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, precision));
  write_row(cells);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SLM_REQUIRE(cells[i].find(',') == std::string::npos,
                "CsvWriter: cell contains a comma");
    if (i != 0) os_ << ',';
    os_ << cells[i];
  }
  os_ << '\n';
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

std::vector<std::vector<double>> read_numeric_csv(std::istream& is,
                                                  bool has_header) {
  std::vector<std::vector<double>> rows;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (first && has_header) {
      first = false;
      continue;
    }
    first = false;
    std::vector<double> row;
    for (const auto& cell : split_csv_line(line)) {
      try {
        row.push_back(std::stod(cell));
      } catch (const std::exception&) {
        throw Error("read_numeric_csv: non-numeric cell '" + cell + "'");
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace slm
