// Physical unit helpers. The library works in a fixed unit system:
//   time        : nanoseconds (double)
//   frequency   : megahertz   (double)
//   voltage     : volts       (double)
//   current     : amperes     (double)
//   capacitance : farads, inductance : henries, resistance : ohms
//
// Conversions are kept explicit and trivial so values in config structs
// read like the paper ("300 MHz", "3.33 ns").
#pragma once

namespace slm::units {

/// Clock period in nanoseconds for a frequency given in MHz.
constexpr double period_ns(double freq_mhz) { return 1000.0 / freq_mhz; }

/// Frequency in MHz for a period given in nanoseconds.
constexpr double freq_mhz(double period_ns_) { return 1000.0 / period_ns_; }

/// Nanoseconds expressed in seconds (for PDN differential equations).
constexpr double ns_to_s(double t_ns) { return t_ns * 1e-9; }

/// Seconds expressed in nanoseconds.
constexpr double s_to_ns(double t_s) { return t_s * 1e9; }

constexpr double kNominalVdd = 1.0;  ///< Nominal core supply, volts.

}  // namespace slm::units
