#include "common/stats.hpp"

#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace slm {

void OnlineMeanVar::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineMeanVar::variance() const {
  return n_ >= 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineMeanVar::sample_variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineMeanVar::stddev() const { return std::sqrt(variance()); }

void OnlineMeanVar::merge(const OnlineMeanVar& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) *
             static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  n_ += other.n_;
}

void OnlineCorrelation::add(double x, double y) {
  ++n_;
  const double inv_n = 1.0 / static_cast<double>(n_);
  const double dx = x - mean_x_;
  const double dy = y - mean_y_;
  mean_x_ += dx * inv_n;
  mean_y_ += dy * inv_n;
  m2_x_ += dx * (x - mean_x_);
  m2_y_ += dy * (y - mean_y_);
  cov_ += dx * (y - mean_y_);
}

double OnlineCorrelation::correlation() const {
  if (n_ < 2) return 0.0;
  const double denom = std::sqrt(m2_x_ * m2_y_);
  return denom > 0.0 ? cov_ / denom : 0.0;
}

MultiCorrelation::MultiCorrelation(std::size_t n_hypotheses)
    : sum_h_(n_hypotheses, 0.0),
      sum_hh_(n_hypotheses, 0.0),
      sum_hy_(n_hypotheses, 0.0) {}

void MultiCorrelation::add(const std::vector<double>& h, double y) {
  SLM_REQUIRE(h.size() == sum_h_.size(),
              "MultiCorrelation::add: hypothesis count mismatch");
  ++n_;
  sum_y_ += y;
  sum_yy_ += y * y;
  for (std::size_t k = 0; k < h.size(); ++k) {
    sum_h_[k] += h[k];
    sum_hh_[k] += h[k] * h[k];
    sum_hy_[k] += h[k] * y;
  }
}

void MultiCorrelation::add_binary(const std::vector<std::uint8_t>& h_bits,
                                  double y) {
  SLM_REQUIRE(h_bits.size() == sum_h_.size(),
              "MultiCorrelation::add_binary: hypothesis count mismatch");
  ++n_;
  sum_y_ += y;
  sum_yy_ += y * y;
  for (std::size_t k = 0; k < h_bits.size(); ++k) {
    if (h_bits[k]) {
      sum_h_[k] += 1.0;
      sum_hh_[k] += 1.0;
      sum_hy_[k] += y;
    }
  }
}

double MultiCorrelation::correlation(std::size_t k) const {
  SLM_REQUIRE(k < sum_h_.size(), "MultiCorrelation::correlation: bad index");
  if (n_ < 2) return 0.0;
  const double n = static_cast<double>(n_);
  const double cov = n * sum_hy_[k] - sum_h_[k] * sum_y_;
  const double var_h = n * sum_hh_[k] - sum_h_[k] * sum_h_[k];
  const double var_y = n * sum_yy_ - sum_y_ * sum_y_;
  const double denom = std::sqrt(var_h * var_y);
  return denom > 0.0 ? cov / denom : 0.0;
}

std::vector<double> MultiCorrelation::correlations() const {
  std::vector<double> out(sum_h_.size());
  for (std::size_t k = 0; k < out.size(); ++k) out[k] = correlation(k);
  return out;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  SLM_REQUIRE(x.size() == y.size(), "pearson: size mismatch");
  OnlineCorrelation c;
  for (std::size_t i = 0; i < x.size(); ++i) c.add(x[i], y[i]);
  return c.correlation();
}

double min_of(const std::vector<double>& v) {
  SLM_REQUIRE(!v.empty(), "min_of: empty vector");
  double m = v[0];
  for (double x : v) m = x < m ? x : m;
  return m;
}

double max_of(const std::vector<double>& v) {
  SLM_REQUIRE(!v.empty(), "max_of: empty vector");
  double m = v[0];
  for (double x : v) m = x > m ? x : m;
  return m;
}

std::size_t argmax(const std::vector<double>& v) {
  SLM_REQUIRE(!v.empty(), "argmax: empty vector");
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

std::size_t argmax_abs(const std::vector<double>& v) {
  SLM_REQUIRE(!v.empty(), "argmax_abs: empty vector");
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (std::abs(v[i]) > std::abs(v[best])) best = i;
  }
  return best;
}

}  // namespace slm
