// Tiny leveled logger. Benches use it for progress lines on stderr so that
// stdout stays a clean, parseable figure report.
#pragma once

#include <sstream>
#include <string>

namespace slm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level (default kInfo). Thread-unsafe by design — the
/// library is single-threaded per campaign.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, ss_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace slm
