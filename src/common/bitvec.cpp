#include "common/bitvec.hpp"

#include <bit>

#include "common/error.hpp"

namespace slm {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t word_count(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}
}  // namespace

BitVec::BitVec(std::size_t size) : size_(size), words_(word_count(size), 0) {}

BitVec::BitVec(std::size_t size, std::uint64_t value) : BitVec(size) {
  if (!words_.empty()) {
    words_[0] = value;
    mask_top();
  }
}

BitVec BitVec::from_string(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[i];
    SLM_REQUIRE(c == '0' || c == '1', "BitVec::from_string: invalid char");
    // MSB first: bits[0] is the highest bit index.
    v.set(bits.size() - 1 - i, c == '1');
  }
  return v;
}

bool BitVec::get(std::size_t i) const {
  SLM_REQUIRE(i < size_, "BitVec::get: index out of range");
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVec::set(std::size_t i, bool v) {
  SLM_REQUIRE(i < size_, "BitVec::set: index out of range");
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (v) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVec::flip(std::size_t i) {
  SLM_REQUIRE(i < size_, "BitVec::flip: index out of range");
  words_[i / kWordBits] ^= std::uint64_t{1} << (i % kWordBits);
}

void BitVec::set_all(bool v) {
  const std::uint64_t fill = v ? ~std::uint64_t{0} : 0;
  for (auto& w : words_) w = fill;
  mask_top();
}

std::uint64_t BitVec::to_uint64() const {
  return words_.empty() ? 0 : words_[0];
}

BitVec BitVec::slice(std::size_t lo, std::size_t n) const {
  SLM_REQUIRE(lo + n <= size_, "BitVec::slice: range out of bounds");
  BitVec out(n);
  for (std::size_t i = 0; i < n; ++i) out.set(i, get(lo + i));
  return out;
}

std::size_t BitVec::popcount() const {
  std::size_t total = 0;
  for (auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t BitVec::hamming_distance(const BitVec& other) const {
  check_same_size(other);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return total;
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) s[size_ - 1 - i] = '1';
  }
  return s;
}

BitVec BitVec::operator~() const {
  BitVec out(*this);
  for (auto& w : out.words_) w = ~w;
  out.mask_top();
  return out;
}

BitVec BitVec::operator&(const BitVec& o) const {
  BitVec out(*this);
  out &= o;
  return out;
}

BitVec BitVec::operator|(const BitVec& o) const {
  BitVec out(*this);
  out |= o;
  return out;
}

BitVec BitVec::operator^(const BitVec& o) const {
  BitVec out(*this);
  out ^= o;
  return out;
}

BitVec& BitVec::operator&=(const BitVec& o) {
  check_same_size(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& o) {
  check_same_size(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& o) {
  check_same_size(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

bool BitVec::operator==(const BitVec& o) const {
  return size_ == o.size_ && words_ == o.words_;
}

void BitVec::check_same_size(const BitVec& o) const {
  SLM_REQUIRE(size_ == o.size_, "BitVec: size mismatch");
}

void BitVec::mask_top() {
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << rem) - 1;
  }
}

}  // namespace slm
