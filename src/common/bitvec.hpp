// Dynamic bit vector used for netlist values, sensor endpoint words and
// trace samples. Word-packed (64-bit words), with the operations the rest
// of the library needs: logic ops, Hamming weight/distance, slicing,
// integer import/export, and fluctuation bookkeeping across samples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace slm {

/// Fixed-size (after construction) packed bit vector.
class BitVec {
 public:
  BitVec() = default;

  /// All-zero vector of `size` bits.
  explicit BitVec(std::size_t size);

  /// Vector of `size` bits initialised from the low bits of `value`.
  BitVec(std::size_t size, std::uint64_t value);

  /// Parse from a string of '0'/'1' characters, MSB first ("1010" -> bit3=1).
  static BitVec from_string(const std::string& bits);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool v);
  void flip(std::size_t i);

  void set_all(bool v);

  /// Low 64 bits as an integer (vector may be longer; higher bits ignored).
  std::uint64_t to_uint64() const;

  /// Bits [lo, lo+n) as a new vector. Requires lo+n <= size().
  BitVec slice(std::size_t lo, std::size_t n) const;

  /// Number of set bits.
  std::size_t popcount() const;

  /// Hamming distance to another vector of the same size.
  std::size_t hamming_distance(const BitVec& other) const;

  /// MSB-first '0'/'1' string (inverse of from_string).
  std::string to_string() const;

  BitVec operator~() const;
  BitVec operator&(const BitVec& o) const;
  BitVec operator|(const BitVec& o) const;
  BitVec operator^(const BitVec& o) const;
  BitVec& operator&=(const BitVec& o);
  BitVec& operator|=(const BitVec& o);
  BitVec& operator^=(const BitVec& o);

  bool operator==(const BitVec& o) const;
  bool operator!=(const BitVec& o) const { return !(*this == o); }

  /// Raw word storage (little-endian words, bit i in word i/64).
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  void check_same_size(const BitVec& o) const;
  void mask_top();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Hamming weight of a plain 64-bit word (convenience used by sca/).
inline std::size_t hamming_weight(std::uint64_t v) {
  return static_cast<std::size_t>(__builtin_popcountll(v));
}

/// Hamming distance between two 64-bit words.
inline std::size_t hamming_distance(std::uint64_t a, std::uint64_t b) {
  return hamming_weight(a ^ b);
}

}  // namespace slm
