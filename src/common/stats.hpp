// Online statistics used throughout the side-channel pipeline: Welford
// mean/variance, streaming Pearson correlation, and simple descriptive
// summaries over vectors. All accumulators are single-pass and O(1) per
// update so CPA over 500k traces stays cheap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace slm {

/// Welford single-variable accumulator.
class OnlineMeanVar {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }

  /// Population variance (0 if fewer than 1 sample).
  double variance() const;

  /// Sample (unbiased) variance (0 if fewer than 2 samples).
  double sample_variance() const;

  double stddev() const;

  void merge(const OnlineMeanVar& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Streaming Pearson correlation between two variables.
class OnlineCorrelation {
 public:
  void add(double x, double y);

  std::size_t count() const { return n_; }

  /// Pearson r; 0 when either variable is constant or n < 2.
  double correlation() const;

  double mean_x() const { return mean_x_; }
  double mean_y() const { return mean_y_; }

 private:
  std::size_t n_ = 0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double m2_x_ = 0.0;
  double m2_y_ = 0.0;
  double cov_ = 0.0;
};

/// Batched CPA-style correlation: one shared measurement variable "y"
/// correlated against many hypothesis variables at once. This is the raw
/// five-sums formulation (sums of h, h^2, hy per hypothesis, y, y^2
/// shared), which is what CPA engines use because hypotheses are 0/1.
class MultiCorrelation {
 public:
  explicit MultiCorrelation(std::size_t n_hypotheses);

  /// One trace: hypothesis value h[k] for each k, measurement y.
  void add(const std::vector<double>& h, double y);

  /// Specialised update for binary hypotheses (the common case): h_set
  /// lists the hypothesis indices with h=1; all others have h=0.
  void add_binary(const std::vector<std::uint8_t>& h_bits, double y);

  std::size_t hypothesis_count() const { return sum_h_.size(); }
  std::size_t count() const { return n_; }

  /// Pearson r for hypothesis k.
  double correlation(std::size_t k) const;

  /// All correlations.
  std::vector<double> correlations() const;

 private:
  std::size_t n_ = 0;
  double sum_y_ = 0.0;
  double sum_yy_ = 0.0;
  std::vector<double> sum_h_;
  std::vector<double> sum_hh_;
  std::vector<double> sum_hy_;
};

/// Descriptive summaries over a finished vector.
double mean(const std::vector<double>& v);
double variance(const std::vector<double>& v);   // population
double stddev(const std::vector<double>& v);
double pearson(const std::vector<double>& x, const std::vector<double>& y);
double min_of(const std::vector<double>& v);
double max_of(const std::vector<double>& v);

/// Index of the maximum element (first on ties); requires non-empty.
std::size_t argmax(const std::vector<double>& v);

/// Index of the maximum |element| (first on ties); requires non-empty.
std::size_t argmax_abs(const std::vector<double>& v);

}  // namespace slm
