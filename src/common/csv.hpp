// Minimal CSV writer/reader. Used to dump trace sets and figure series so
// results can be re-plotted outside the harness (the paper's workstation
// stored traces the same way).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace slm {

/// Streaming CSV writer (no quoting; values must not contain commas).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<std::string>& cells);
  void write_row(const std::vector<double>& values, int precision = 6);

 private:
  void write_cells(const std::vector<std::string>& cells);

  std::ostream& os_;
  std::size_t columns_ = 0;
  bool header_written_ = false;
};

/// Parse one CSV line into cells (no quoting support, by design).
std::vector<std::string> split_csv_line(const std::string& line);

/// Read a whole numeric CSV (optionally skipping a header row).
std::vector<std::vector<double>> read_numeric_csv(std::istream& is,
                                                  bool has_header);

}  // namespace slm
