#include "common/rng.hpp"

#include <cmath>

namespace slm {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// Acklam's rational approximation of the standard normal quantile.
// Used only once, to fill the lookup table.
double inverse_normal_cdf(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double plow = 0.02425;
  static constexpr double phigh = 1 - plow;

  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::uniform_int(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection-free multiply-shift (Lemire); bias < 2^-64 * n, negligible
  // for simulation purposes.
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(next()) * n) >> 64);
}

Xoshiro256 Xoshiro256::fork() {
  return Xoshiro256(next() ^ 0xd1b54a32d192ed03ull);
}

Xoshiro256 Xoshiro256::stream(std::uint64_t seed, std::uint64_t stream_index) {
  // Mix the index through splitmix before folding it into the seed so
  // that consecutive indices do not produce correlated xoshiro states
  // (the constructor splitmixes again, giving two rounds total).
  std::uint64_t x = stream_index ^ 0xd1b54a32d192ed03ull;
  return Xoshiro256(seed ^ splitmix64(x));
}

Xoshiro256 Xoshiro256::trace_stream(std::uint64_t seed,
                                    std::uint64_t stream_index,
                                    std::uint64_t trace_index) {
  // Same two-round mixing as stream(), with the trace counter folded in
  // through an independently-keyed splitmix so (d, t) and (t, d) land in
  // unrelated state-space regions.
  std::uint64_t x = stream_index ^ 0xd1b54a32d192ed03ull;
  std::uint64_t y = trace_index ^ 0x8cb92ba72f3d8dd7ull;
  return Xoshiro256(seed ^ splitmix64(x) ^ splitmix64(y));
}

FastNormal::FastNormal() {
  // quantile_[i] = Phi^-1((i + 0.5) / kTableSize) at bucket centres; the
  // +1 guard entry mirrors the last bucket for interpolation at the edge.
  for (int i = 0; i < kTableSize; ++i) {
    const double p = (static_cast<double>(i) + 0.5) / kTableSize;
    quantile_[static_cast<std::size_t>(i)] = inverse_normal_cdf(p);
  }
  quantile_[kTableSize] = quantile_[kTableSize - 1];
}

double FastNormal::operator()(Xoshiro256& rng) const {
  const std::uint64_t r = rng.next();
  const std::uint32_t idx =
      static_cast<std::uint32_t>(r >> (64 - kTableBits));
  // Interpolate inside the bucket with the next 20 bits.
  const double frac =
      static_cast<double>((r >> (64 - kTableBits - 20)) & 0xfffffu) *
      (1.0 / 1048576.0);
  const double lo = quantile_[idx];
  const double hi = quantile_[idx + 1];
  return lo + (hi - lo) * frac;
}

void FastNormal::fill(Xoshiro256& rng, double* out, std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = rng.next();
    const std::uint32_t idx =
        static_cast<std::uint32_t>(r >> (64 - kTableBits));
    const double frac =
        static_cast<double>((r >> (64 - kTableBits - 20)) & 0xfffffu) *
        (1.0 / 1048576.0);
    const double lo = quantile_[idx];
    const double hi = quantile_[idx + 1];
    out[i] = lo + (hi - lo) * frac;
  }
}

const FastNormal& FastNormal::instance() {
  static const FastNormal table;
  return table;
}

}  // namespace slm
