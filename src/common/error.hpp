// Error handling primitives shared by every slm subsystem.
//
// The library throws slm::Error (derived from std::runtime_error) for all
// precondition and invariant violations that a caller could plausibly
// trigger through the public API. Internal never-happens conditions use
// SLM_ASSERT, which also throws (so tests can exercise them) but tags the
// message as an internal invariant failure.
#pragma once

#include <stdexcept>
#include <string>

namespace slm {

/// Base exception for the whole library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* file, int line,
                                     const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + msg);
}
}  // namespace detail

/// Precondition check: throws slm::Error with location info when violated.
#define SLM_REQUIRE(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::slm::detail::throw_error(__FILE__, __LINE__,                  \
                                 std::string("requirement failed: ") + \
                                     (msg));                          \
    }                                                                 \
  } while (0)

/// Internal invariant check.
#define SLM_ASSERT(cond, msg)                                            \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::slm::detail::throw_error(__FILE__, __LINE__,                     \
                                 std::string("internal invariant: ") +   \
                                     (msg));                             \
    }                                                                    \
  } while (0)

}  // namespace slm
