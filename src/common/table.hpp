// Plain-text table rendering for bench output. Every figure bench prints
// its series through this so outputs are uniform and diffable.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace slm {

/// Column-aligned text table with a title row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows; values formatted with `precision`.
  void add_row(const std::vector<double>& values, int precision = 4);

  std::size_t row_count() const { return rows_.size(); }

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared with CSV output).
std::string format_double(double v, int precision = 4);

}  // namespace slm
