#include "common/binio.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>

namespace slm {

namespace {

struct Crc32Table {
  std::uint32_t t[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const std::uint8_t* data,
                           std::size_t size) {
  static const Crc32Table table;
  std::uint32_t c = crc ^ 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table.t[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  return crc32_update(0, data, size);
}

std::size_t write_framed_file(const std::string& path, const char* magic8,
                              std::uint32_t version,
                              const std::vector<std::uint8_t>& payload,
                              const std::string& context) {
  ByteWriter file;
  file.put_bytes(reinterpret_cast<const std::uint8_t*>(magic8), 8);
  file.put_u32(version);
  file.put_u64(payload.size());
  file.put_u32(crc32(payload.data(), payload.size()));
  file.put_bytes(payload.data(), payload.size());

  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    SLM_REQUIRE(static_cast<bool>(os),
                context + ": cannot write '" + tmp_path + "'");
    os.write(reinterpret_cast<const char*>(file.bytes().data()),
             static_cast<std::streamsize>(file.size()));
    os.flush();
    SLM_REQUIRE(static_cast<bool>(os),
                context + ": short write to '" + tmp_path + "'");
  }
  // Atomic replace: a reader (or a crash) sees either the old complete
  // file or the new complete file, never a torn one.
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  SLM_REQUIRE(!ec, context + ": atomic rename to '" + path + "' failed");
  return file.size();
}

std::optional<std::vector<std::uint8_t>> read_framed_file(
    const std::string& path, const char* magic8, std::uint32_t version,
    const std::string& context) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());

  ByteReader in(bytes.data(), bytes.size());
  char magic[8] = {};
  in.get_bytes(reinterpret_cast<std::uint8_t*>(magic), sizeof magic);
  SLM_REQUIRE(std::equal(magic, magic + sizeof magic, magic8),
              context + ": bad magic in '" + path + "'");
  const std::uint32_t file_version = in.get_u32();
  SLM_REQUIRE(file_version == version,
              context + ": unsupported version " +
                  std::to_string(file_version) + " in '" + path +
                  "' (expected " + std::to_string(version) + ")");
  const std::uint64_t length = in.get_u64();
  const std::uint32_t stored_crc = in.get_u32();
  SLM_REQUIRE(length == in.remaining(),
              context + ": truncated payload in '" + path + "'");
  const std::uint32_t actual_crc =
      crc32(bytes.data() + (bytes.size() - length), length);
  SLM_REQUIRE(actual_crc == stored_crc,
              context + ": CRC mismatch in '" + path +
                  "' — file is corrupt");
  std::vector<std::uint8_t> payload(bytes.end() - static_cast<long>(length),
                                    bytes.end());
  return payload;
}

}  // namespace slm
