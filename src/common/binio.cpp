#include "common/binio.hpp"

namespace slm {

namespace {

struct Crc32Table {
  std::uint32_t t[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const Crc32Table table;
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table.t[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace slm
