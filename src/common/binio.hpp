// Little-endian binary serialization helpers + CRC-32, used by the
// campaign checkpoint files (core/checkpoint). Doubles round-trip
// bit-exactly (raw IEEE-754 bits), which is what makes resumed
// campaigns indistinguishable from uninterrupted ones.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace slm {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// Incremental CRC-32: pass the previous return value (0 to start) to
/// chain spans — crc32_update(crc32_update(0, a, na), b, nb) equals
/// crc32 of a‖b. The trace store uses this to checksum each chunk's
/// slices of several columns without concatenating them.
std::uint32_t crc32_update(std::uint32_t crc, const std::uint8_t* data,
                           std::size_t size);

/// Shared framed-file envelope for the binary state formats (`SLMCKPT1`
/// campaign checkpoints, `SLMSNAP1` fabric accumulator snapshots):
///
///   magic   8 bytes
///   version u32      readers reject other versions (no silent migration)
///   length  u64      payload byte count
///   crc     u32      CRC-32 of the payload
///   payload
///
/// The file is written to `<path>.tmp` and atomically renamed into
/// place, so a kill at any instant (including mid-write) leaves either
/// the previous complete file or the new complete file, never a torn
/// one. Returns the total byte count written; throws slm::Error
/// ("<context>: cannot write ...") on I/O failure.
std::size_t write_framed_file(const std::string& path, const char* magic8,
                              std::uint32_t version,
                              const std::vector<std::uint8_t>& payload,
                              const std::string& context);

/// Read and validate a framed file. Returns nullopt when the file does
/// not exist; throws slm::Error with a `context`-prefixed message on bad
/// magic, version mismatch, truncated payload, or CRC failure. The
/// returned bytes are the CRC-verified payload.
std::optional<std::vector<std::uint8_t>> read_framed_file(
    const std::string& path, const char* magic8, std::uint32_t version,
    const std::string& context);

/// Append-only little-endian byte buffer.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }

  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void put_f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(bits);
  }

  void put_bytes(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  void put_f64_vector(const std::vector<double>& v) {
    put_u64(v.size());
    for (const double x : v) put_f64(x);
  }

  template <std::size_t N>
  void put_u64_array(const std::array<std::uint64_t, N>& a) {
    for (const std::uint64_t x : a) put_u64(x);
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a byte span; throws slm::Error on overrun
/// (a truncated or corrupt checkpoint must fail loudly, never misparse).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t get_u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double get_f64() {
    const std::uint64_t bits = get_u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  void get_bytes(std::uint8_t* out, std::size_t n) {
    need(n);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  std::vector<double> get_f64_vector() {
    const std::uint64_t n = get_u64();
    SLM_REQUIRE(n <= remaining() / 8, "ByteReader: vector length overruns");
    std::vector<double> v(n);
    for (auto& x : v) x = get_f64();
    return v;
  }

  template <std::size_t N>
  std::array<std::uint64_t, N> get_u64_array() {
    std::array<std::uint64_t, N> a{};
    for (auto& x : a) x = get_u64();
    return a;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const {
    SLM_REQUIRE(size_ - pos_ >= n, "ByteReader: truncated input");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace slm
