// Deterministic, fast random number generation for simulation campaigns.
//
// Campaign hot loops draw hundreds of millions of Gaussians (one per
// endpoint per sample), so the normal generator uses a precomputed
// inverse-CDF table with linear interpolation instead of Box-Muller:
// one 64-bit xoshiro draw per normal, no transcendental functions.
// Accuracy (~1e-3 in quantile) is far below the physical noise sigmas.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace slm {

/// Domain separators for counter-keyed per-trace streams (determinism
/// contract v2, DESIGN.md §12). Each consumer of per-trace randomness
/// derives its stream from trace_stream(seed, domain, trace_index) with
/// its own domain constant, so the capture draws, fence draws, and mask
/// draws of the same trace never collide.
inline constexpr std::uint64_t kTraceDomainCapture = 0;
inline constexpr std::uint64_t kTraceDomainFence = 1;
inline constexpr std::uint64_t kTraceDomainMask = 2;

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Random bit.
  bool coin() { return (next() >> 63) != 0; }

  /// Split off an independent stream (jump-free: reseeds via splitmix).
  Xoshiro256 fork();

  /// Deterministic independent stream for shard `stream_index` of a
  /// campaign seeded with `seed`: the same (seed, index) pair always
  /// yields the same stream, and distinct indices land in decorrelated
  /// regions of the state space (splitmix-mixed before seeding, same
  /// machinery as fork()). This is what sharded campaigns use so that
  /// results depend only on (seed, shard count), never on scheduling.
  static Xoshiro256 stream(std::uint64_t seed, std::uint64_t stream_index);

  /// Deterministic stateless per-trace stream: the same machinery as
  /// stream(), keyed on BOTH a stream/domain index and a trace counter.
  /// trace_stream(seed, d, t) depends only on its three arguments — no
  /// sequential draw ordering across traces — which is what lets
  /// determinism contract v2 generate traces in any order, on any lane,
  /// and still produce bit-identical campaigns (DESIGN.md §12).
  static Xoshiro256 trace_stream(std::uint64_t seed,
                                 std::uint64_t stream_index,
                                 std::uint64_t trace_index);

  /// The full 256-bit generator state. Saving state() and restoring it
  /// with set_state() resumes the stream at the exact draw position —
  /// this is how campaign checkpoints capture "RNG stream positions"
  /// (see core/checkpoint and docs/OBSERVABILITY.md).
  std::array<std::uint64_t, 4> state() const { return s_; }
  void set_state(const std::array<std::uint64_t, 4>& s) { s_ = s; }

  // UniformRandomBitGenerator interface (usable with <random> and
  // std::shuffle).
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Standard-normal generator backed by an inverse-CDF lookup table.
class FastNormal {
 public:
  FastNormal();

  /// One standard normal variate, consuming one RNG draw.
  double operator()(Xoshiro256& rng) const;

  /// Normal with the given mean and standard deviation.
  double operator()(Xoshiro256& rng, double mean, double sigma) const {
    return mean + sigma * (*this)(rng);
  }

  /// Fill `out[0..n)` with standard normals, consuming exactly n RNG
  /// draws in order — out[i] is bit-identical to the i-th operator()
  /// call on the same stream. Batched capture kernels draw their whole
  /// jitter block through this and stay on the per-call RNG contract.
  void fill(Xoshiro256& rng, double* out, std::size_t n) const;

  /// Shared immutable instance (table is ~8 KiB, build it once).
  static const FastNormal& instance();

 private:
  static constexpr int kTableBits = 12;
  static constexpr int kTableSize = 1 << kTableBits;  // 4096 entries
  std::array<double, kTableSize + 1> quantile_{};
};

}  // namespace slm
