#include "fpga/fabric.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace slm::fpga {

bool Rect::overlaps(const Rect& o) const {
  return x < o.x + o.w && o.x < x + w && y < o.y + o.h && o.y < y + h;
}

Fabric::Fabric(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  SLM_REQUIRE(width > 0 && height > 0, "Fabric: empty grid");
}

std::size_t Fabric::add_tenant(const std::string& name, const Rect& region) {
  SLM_REQUIRE(region.x + region.w <= width_ && region.y + region.h <= height_,
              "add_tenant: region outside the fabric");
  SLM_REQUIRE(region.w > 0 && region.h > 0, "add_tenant: empty region");
  for (const auto& t : tenants_) {
    SLM_REQUIRE(!t.region.overlaps(region),
                "add_tenant: region overlaps tenant '" + t.name +
                    "' (isolation violation)");
  }
  tenants_.push_back(Tenant{name, region, {}});
  return tenants_.size() - 1;
}

std::size_t Fabric::place_module(std::size_t tenant, PlacedModule module) {
  SLM_REQUIRE(tenant < tenants_.size(), "place_module: unknown tenant");
  const Rect& region = tenants_[tenant].region;
  SLM_REQUIRE(module.bounds.x >= region.x && module.bounds.y >= region.y &&
                  module.bounds.x + module.bounds.w <= region.x + region.w &&
                  module.bounds.y + module.bounds.h <= region.y + region.h,
              "place_module: module outside tenant region");
  SLM_REQUIRE(module.bounds.tiles() > 0, "place_module: empty module");
  if (module.cell_count == 0) {
    module.cell_count = static_cast<std::size_t>(
        module.fill * static_cast<double>(module.bounds.tiles()));
  }
  SLM_REQUIRE(module.cell_count <= module.bounds.tiles(),
              "place_module: more cells than tiles");
  for (std::size_t hot : module.hot_cells) {
    SLM_REQUIRE(hot < module.cell_count,
                "place_module: hot cell index out of range");
  }
  modules_.push_back(std::move(module));
  tenants_[tenant].module_indices.push_back(modules_.size() - 1);
  return modules_.size() - 1;
}

const Tenant& Fabric::tenant(std::size_t i) const {
  SLM_REQUIRE(i < tenants_.size(), "tenant: out of range");
  return tenants_[i];
}

const PlacedModule& Fabric::module(std::size_t i) const {
  SLM_REQUIRE(i < modules_.size(), "module: out of range");
  return modules_[i];
}

double Fabric::pdn_coupling(std::size_t tenant_a, std::size_t tenant_b,
                            double alpha) const {
  SLM_REQUIRE(tenant_a < tenants_.size() && tenant_b < tenants_.size(),
              "pdn_coupling: unknown tenant");
  if (tenant_a == tenant_b) return 1.0;
  const Rect& a = tenants_[tenant_a].region;
  const Rect& b = tenants_[tenant_b].region;
  const double dist = std::abs(a.center_x() - b.center_x()) +
                      std::abs(a.center_y() - b.center_y());
  return 1.0 / (1.0 + alpha * dist);
}

std::vector<std::pair<std::size_t, std::size_t>> Fabric::scatter_cells(
    const PlacedModule& m) const {
  // Deterministic seed from the module name: renders are reproducible.
  std::uint64_t seed = 0xcbf29ce484222325ull;
  for (char c : m.name) seed = (seed ^ static_cast<std::uint8_t>(c)) *
                               0x100000001b3ull;
  Xoshiro256 rng(seed);

  std::vector<std::size_t> tiles(m.bounds.tiles());
  for (std::size_t i = 0; i < tiles.size(); ++i) tiles[i] = i;
  std::shuffle(tiles.begin(), tiles.end(), rng);

  std::vector<std::pair<std::size_t, std::size_t>> cells;
  cells.reserve(m.cell_count);
  for (std::size_t i = 0; i < m.cell_count; ++i) {
    const std::size_t t = tiles[i];
    cells.emplace_back(m.bounds.x + t % m.bounds.w,
                       m.bounds.y + t / m.bounds.w);
  }
  return cells;
}

std::string Fabric::render_ascii() const {
  std::vector<std::string> grid(height_, std::string(width_, '.'));

  // Tenant boundaries (vertical edges only keep the render readable).
  for (const auto& t : tenants_) {
    for (std::size_t y = t.region.y; y < t.region.y + t.region.h; ++y) {
      if (t.region.x > 0) grid[y][t.region.x - 1] = '|';
    }
  }

  for (const auto& m : modules_) {
    const auto cells = scatter_cells(m);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto [x, y] = cells[i];
      grid[y][x] = m.symbol;
    }
    for (std::size_t hot : m.hot_cells) {
      const auto [x, y] = cells[hot];
      grid[y][x] = '*';
    }
  }

  std::string out;
  // Render top row last-to-first so y grows upwards like a die photo.
  for (std::size_t y = height_; y-- > 0;) {
    out += grid[y];
    out += '\n';
  }
  return out;
}

}  // namespace slm::fpga
