#include "fpga/clocking.hpp"

#include <cmath>

namespace slm::fpga {

std::optional<MmcmSetting> Mmcm::find_setting(double target_mhz,
                                              double tolerance_mhz) const {
  std::optional<MmcmSetting> best;
  for (int d = c_.d_min; d <= c_.d_max; ++d) {
    for (int m = c_.m_min; m <= c_.m_max; ++m) {
      const double vco = c_.ref_mhz * static_cast<double>(m) /
                         static_cast<double>(d);
      if (vco < c_.vco_min_mhz || vco > c_.vco_max_mhz) continue;
      // Best output divider for this VCO.
      const int o_ideal = static_cast<int>(std::lround(vco / target_mhz));
      for (int o = std::max(c_.o_min, o_ideal - 1);
           o <= std::min(c_.o_max, o_ideal + 1); ++o) {
        if (o < c_.o_min) continue;
        const double f = vco / static_cast<double>(o);
        const double err = std::abs(f - target_mhz);
        if (err > tolerance_mhz) continue;
        if (!best || err < best->error_mhz) {
          best = MmcmSetting{m, d, o, vco, f, err};
        }
      }
    }
  }
  return best;
}

}  // namespace slm::fpga
