// Multi-tenant fabric model: a tile grid partitioned into logically
// isolated tenant regions that still share the electrical PDN. Provides
// the placement/floorplan view of Figs. 3 and 4 (ASCII rendering with
// sensitive endpoints marked) and the region-distance PDN coupling factor
// the campaign engine applies between victim and attacker.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace slm::fpga {

struct Rect {
  std::size_t x = 0, y = 0;  ///< lower-left tile
  std::size_t w = 0, h = 0;

  bool contains(std::size_t px, std::size_t py) const {
    return px >= x && px < x + w && py >= y && py < y + h;
  }
  bool overlaps(const Rect& o) const;
  double center_x() const { return static_cast<double>(x) + w / 2.0; }
  double center_y() const { return static_cast<double>(y) + h / 2.0; }
  std::size_t tiles() const { return w * h; }
};

/// A placed module: occupies a pseudo-random scatter of tiles within its
/// bounding rect (mapped logic is never a solid block), rendered with its
/// symbol. `hot_cells` marks sensitive endpoints ('*' overlay in Figs.
/// 3/4 style renderings).
struct PlacedModule {
  std::string name;
  char symbol = '?';
  Rect bounds;
  double fill = 0.6;                 ///< fraction of tiles occupied
  std::size_t cell_count = 0;        ///< logic cells to scatter
  std::vector<std::size_t> hot_cells;  ///< indices of sensitive cells
};

struct Tenant {
  std::string name;
  Rect region;
  std::vector<std::size_t> module_indices;
};

class Fabric {
 public:
  Fabric(std::size_t width, std::size_t height);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }

  /// Register a tenant region; throws if it overlaps an existing tenant
  /// (logical isolation is mandatory in the adversary model).
  std::size_t add_tenant(const std::string& name, const Rect& region);

  /// Place a module inside a tenant's region (bounds must fit).
  std::size_t place_module(std::size_t tenant, PlacedModule module);

  const Tenant& tenant(std::size_t i) const;
  const PlacedModule& module(std::size_t i) const;
  std::size_t tenant_count() const { return tenants_.size(); }
  std::size_t module_count() const { return modules_.size(); }

  /// PDN coupling between two tenants: 1 / (1 + alpha * manhattan
  /// distance between region centers, in tiles). Same-region = 1.
  double pdn_coupling(std::size_t tenant_a, std::size_t tenant_b,
                      double alpha = 0.015) const;

  /// ASCII floorplan: module symbols, '*' for sensitive cells, '.' for
  /// empty fabric, '|' tenant boundaries. One row per tile row.
  std::string render_ascii() const;

 private:
  /// Deterministic scatter of a module's cells over its bounds.
  std::vector<std::pair<std::size_t, std::size_t>> scatter_cells(
      const PlacedModule& m) const;

  std::size_t width_;
  std::size_t height_;
  std::vector<Tenant> tenants_;
  std::vector<PlacedModule> modules_;
};

}  // namespace slm::fpga
