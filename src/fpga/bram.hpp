// BRAM trace buffer: the on-chip FIFO the attacker fills with sensor
// words during an encryption and drains over UART afterwards. Fixed
// capacity with explicit overflow accounting, as block RAM forces.
#pragma once

#include <cstdint>
#include <vector>

namespace slm::fpga {

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity_words);

  /// Store one word; returns false (and counts the drop) when full.
  bool push(std::uint64_t word);

  std::size_t size() const { return data_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return data_.size() == capacity_; }
  std::size_t dropped() const { return dropped_; }

  /// Read everything out and clear (the UART drain).
  std::vector<std::uint64_t> drain();

  const std::vector<std::uint64_t>& peek() const { return data_; }

 private:
  std::size_t capacity_;
  std::size_t dropped_ = 0;
  std::vector<std::uint64_t> data_;
};

}  // namespace slm::fpga
