#include "fpga/uart.hpp"

#include "common/error.hpp"

namespace slm::fpga {

namespace {
constexpr std::uint8_t kSyncByte = 0xA5;
}

std::uint8_t crc8(const std::vector<std::uint8_t>& bytes) {
  std::uint8_t crc = 0x00;
  for (std::uint8_t b : bytes) {
    crc ^= b;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x80) ? static_cast<std::uint8_t>((crc << 1) ^ 0x07)
                         : static_cast<std::uint8_t>(crc << 1);
    }
  }
  return crc;
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  SLM_REQUIRE(frame.payload.size() <= 0xffff, "encode_frame: payload too big");
  std::vector<std::uint8_t> out;
  out.reserve(frame.payload.size() + 5);
  out.push_back(kSyncByte);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  out.push_back(static_cast<std::uint8_t>(frame.payload.size() & 0xff));
  out.push_back(static_cast<std::uint8_t>(frame.payload.size() >> 8));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());

  // CRC covers type, length and payload.
  std::vector<std::uint8_t> crc_range(out.begin() + 1, out.end());
  out.push_back(crc8(crc_range));
  return out;
}

void FrameDecoder::reset_frame() {
  state_ = State::kSync;
  current_ = Frame{};
  expected_len_ = 0;
}

std::optional<Frame> FrameDecoder::feed(std::uint8_t byte) {
  switch (state_) {
    case State::kSync:
      if (byte == kSyncByte) {
        state_ = State::kType;
      } else {
        ++sync_errors_;
      }
      return std::nullopt;
    case State::kType:
      current_.type = static_cast<FrameType>(byte);
      state_ = State::kLenLo;
      return std::nullopt;
    case State::kLenLo:
      expected_len_ = byte;
      state_ = State::kLenHi;
      return std::nullopt;
    case State::kLenHi:
      expected_len_ |= static_cast<std::size_t>(byte) << 8;
      state_ = expected_len_ == 0 ? State::kCrc : State::kPayload;
      return std::nullopt;
    case State::kPayload:
      current_.payload.push_back(byte);
      if (current_.payload.size() == expected_len_) state_ = State::kCrc;
      return std::nullopt;
    case State::kCrc: {
      std::vector<std::uint8_t> crc_range;
      crc_range.reserve(current_.payload.size() + 3);
      crc_range.push_back(static_cast<std::uint8_t>(current_.type));
      crc_range.push_back(
          static_cast<std::uint8_t>(current_.payload.size() & 0xff));
      crc_range.push_back(
          static_cast<std::uint8_t>(current_.payload.size() >> 8));
      crc_range.insert(crc_range.end(), current_.payload.begin(),
                       current_.payload.end());
      const bool ok = crc8(crc_range) == byte;
      Frame done = std::move(current_);
      reset_frame();
      if (ok) return done;
      ++crc_errors_;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::vector<Frame> FrameDecoder::feed(const std::vector<std::uint8_t>& bytes) {
  std::vector<Frame> frames;
  for (std::uint8_t b : bytes) {
    if (auto f = feed(b)) frames.push_back(std::move(*f));
  }
  return frames;
}

Frame make_trace_frame(const std::vector<std::uint64_t>& words) {
  Frame f;
  f.type = FrameType::kTrace;
  f.payload.reserve(words.size() * 8);
  for (std::uint64_t w : words) {
    for (int i = 0; i < 8; ++i) {
      f.payload.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    }
  }
  return f;
}

std::vector<std::uint64_t> parse_trace_frame(const Frame& frame) {
  SLM_REQUIRE(frame.type == FrameType::kTrace,
              "parse_trace_frame: wrong frame type");
  SLM_REQUIRE(frame.payload.size() % 8 == 0,
              "parse_trace_frame: misaligned payload");
  std::vector<std::uint64_t> words(frame.payload.size() / 8, 0);
  for (std::size_t w = 0; w < words.size(); ++w) {
    for (int i = 0; i < 8; ++i) {
      words[w] |= static_cast<std::uint64_t>(frame.payload[8 * w + i])
                  << (8 * i);
    }
  }
  return words;
}

}  // namespace slm::fpga
