// UART frame codec: the byte protocol between the FPGA design and the
// measurement workstation (Fig. 2). Frames carry a type tag, a payload
// and a CRC-8 so the software side can detect line corruption.
//
//   [0xA5][type][len_lo][len_hi][payload ...][crc8]
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace slm::fpga {

enum class FrameType : std::uint8_t {
  kPlaintext = 0x01,   ///< workstation -> FPGA: next AES input
  kCiphertext = 0x02,  ///< FPGA -> workstation
  kTrace = 0x03,       ///< FPGA -> workstation: sensor words
  kControl = 0x04,     ///< start/stop, RO enable, clock select
};

struct Frame {
  FrameType type = FrameType::kControl;
  std::vector<std::uint8_t> payload;
};

/// CRC-8 (poly 0x07, init 0x00) over a byte range.
std::uint8_t crc8(const std::vector<std::uint8_t>& bytes);

/// Serialise a frame to the wire format.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Streaming decoder: feed bytes, collect completed frames. Corrupt
/// frames (bad CRC / bad sync) are dropped and counted.
class FrameDecoder {
 public:
  /// Feed one byte; returns a frame when one completes.
  std::optional<Frame> feed(std::uint8_t byte);

  /// Feed many bytes; returns all completed frames.
  std::vector<Frame> feed(const std::vector<std::uint8_t>& bytes);

  std::size_t crc_errors() const { return crc_errors_; }
  std::size_t sync_errors() const { return sync_errors_; }

 private:
  enum class State { kSync, kType, kLenLo, kLenHi, kPayload, kCrc };
  void reset_frame();

  State state_ = State::kSync;
  Frame current_;
  std::size_t expected_len_ = 0;
  std::size_t crc_errors_ = 0;
  std::size_t sync_errors_ = 0;
};

/// Pack sensor words (64-bit, little-endian) into a trace frame.
Frame make_trace_frame(const std::vector<std::uint64_t>& words);

/// Unpack a trace frame back into words (throws on misaligned payload).
std::vector<std::uint64_t> parse_trace_frame(const Frame& frame);

}  // namespace slm::fpga
