// MMCM clock-synthesis model for the Zynq XC7Z020 setup: a 125 MHz board
// reference, VCO = ref * M / D constrained to [600, 1200] MHz, output =
// VCO / O. The attacker needs nothing exotic — 50/100/150/300 MHz are all
// trivially synthesisable, which is part of why the paper's threat is
// realistic: requesting a 300 MHz clock for a "50 MHz" circuit raises no
// structural alarm.
#pragma once

#include <optional>
#include <vector>

namespace slm::fpga {

struct MmcmConstraints {
  double ref_mhz = 125.0;
  double vco_min_mhz = 600.0;
  double vco_max_mhz = 1200.0;
  int m_min = 2, m_max = 64;   ///< multiplier
  int d_min = 1, d_max = 56;   ///< input divider
  int o_min = 1, o_max = 128;  ///< output divider
};

struct MmcmSetting {
  int m = 0, d = 0, o = 0;
  double vco_mhz = 0.0;
  double f_out_mhz = 0.0;
  double error_mhz = 0.0;
};

class Mmcm {
 public:
  explicit Mmcm(const MmcmConstraints& c = {}) : c_(c) {}

  /// Best M/D/O combination for a target frequency; nullopt when nothing
  /// lands within `tolerance_mhz`.
  std::optional<MmcmSetting> find_setting(double target_mhz,
                                          double tolerance_mhz = 0.01) const;

  /// True when the target is synthesisable within tolerance.
  bool can_generate(double target_mhz, double tolerance_mhz = 0.01) const {
    return find_setting(target_mhz, tolerance_mhz).has_value();
  }

  const MmcmConstraints& constraints() const { return c_; }

 private:
  MmcmConstraints c_;
};

}  // namespace slm::fpga
