#include "fpga/bram.hpp"

#include "common/error.hpp"

namespace slm::fpga {

TraceBuffer::TraceBuffer(std::size_t capacity_words)
    : capacity_(capacity_words) {
  SLM_REQUIRE(capacity_words > 0, "TraceBuffer: zero capacity");
  data_.reserve(capacity_words);
}

bool TraceBuffer::push(std::uint64_t word) {
  if (full()) {
    ++dropped_;
    return false;
  }
  data_.push_back(word);
  return true;
}

std::vector<std::uint64_t> TraceBuffer::drain() {
  std::vector<std::uint64_t> out = std::move(data_);
  data_.clear();
  data_.reserve(capacity_);
  dropped_ = 0;
  return out;
}

}  // namespace slm::fpga
