// Voltage-dependent delay scaling.
//
// First-order model used throughout the literature on FPGA voltage
// sensors: gate delay grows (approximately linearly, for the small
// excursions a PDN produces) as the supply voltage drops below nominal:
//
//   d(V) = d0 * (1 + k * (Vnom - V))
//
// Because *every* gate scales by the same factor, an entire transition
// waveform computed at nominal voltage stretches uniformly — which is why
// capture under voltage V is equivalent to sampling the nominal waveform
// at the "effective time" T / factor(V).
#pragma once

namespace slm::timing {

struct VoltageDelayModel {
  double vnom = 1.0;                 ///< nominal supply (V)
  double sensitivity_per_volt = 1.5; ///< k: fractional delay increase per V

  /// Delay scale factor at supply voltage v (clamped to stay physical).
  double factor(double v) const {
    const double f = 1.0 + sensitivity_per_volt * (vnom - v);
    return f < 0.05 ? 0.05 : f;
  }

  /// Voltage that yields the given delay factor (inverse of factor()).
  double voltage_for_factor(double f) const {
    return vnom - (f - 1.0) / sensitivity_per_volt;
  }
};

}  // namespace slm::timing
