#include "timing/sta.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace slm::timing {

using netlist::Gate;
using netlist::GateType;
using netlist::NetId;

Sta::Sta(const netlist::Netlist& nl)
    : nl_(nl),
      arrival_(nl.gate_count(), 0.0),
      worst_fanin_(nl.gate_count(), netlist::kInvalidNet) {
  const auto order = nl.topo_order();
  for (NetId id : order) {
    const Gate& g = nl.gate(id);
    if (g.fanin.empty()) {
      arrival_[id] = 0.0;
      continue;
    }
    double worst = -1.0;
    NetId worst_net = netlist::kInvalidNet;
    for (NetId f : g.fanin) {
      if (arrival_[f] > worst) {
        worst = arrival_[f];
        worst_net = f;
      }
    }
    arrival_[id] = worst + g.delay_ns;
    worst_fanin_[id] = worst_net;
  }
}

double Sta::arrival(NetId net) const {
  SLM_REQUIRE(net < arrival_.size(), "Sta::arrival: unknown net");
  return arrival_[net];
}

std::vector<double> Sta::endpoint_arrivals() const {
  std::vector<double> out;
  out.reserve(nl_.outputs().size());
  for (const auto& port : nl_.outputs()) out.push_back(arrival_[port.net]);
  return out;
}

double Sta::critical_delay() const {
  double worst = 0.0;
  for (const auto& port : nl_.outputs()) {
    worst = std::max(worst, arrival_[port.net]);
  }
  return worst;
}

std::vector<double> Sta::endpoint_slacks(double clock_period_ns,
                                         double setup_ns) const {
  std::vector<double> slacks;
  slacks.reserve(nl_.outputs().size());
  for (const auto& port : nl_.outputs()) {
    slacks.push_back(clock_period_ns - setup_ns - arrival_[port.net]);
  }
  return slacks;
}

std::vector<std::size_t> Sta::failing_endpoints(double clock_period_ns,
                                                double setup_ns) const {
  std::vector<std::size_t> failing;
  const auto slacks = endpoint_slacks(clock_period_ns, setup_ns);
  for (std::size_t i = 0; i < slacks.size(); ++i) {
    if (slacks[i] < 0.0) failing.push_back(i);
  }
  return failing;
}

std::vector<NetId> Sta::critical_path_to(NetId net) const {
  SLM_REQUIRE(net < arrival_.size(), "critical_path_to: unknown net");
  std::vector<NetId> path;
  NetId cur = net;
  while (cur != netlist::kInvalidNet) {
    path.push_back(cur);
    cur = worst_fanin_[cur];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string Sta::report_critical_path() const {
  std::ostringstream os;
  if (nl_.outputs().empty()) return "(no endpoints)\n";
  std::size_t worst_idx = 0;
  double worst = -1.0;
  const auto& outs = nl_.outputs();
  for (std::size_t i = 0; i < outs.size(); ++i) {
    if (arrival_[outs[i].net] > worst) {
      worst = arrival_[outs[i].net];
      worst_idx = i;
    }
  }
  os << "critical path to endpoint '" << outs[worst_idx].name << "' ("
     << worst << " ns):\n";
  for (NetId id : critical_path_to(outs[worst_idx].net)) {
    const Gate& g = nl_.gate(id);
    os << "  " << netlist::gate_type_name(g.type) << " " << g.name << "  @ "
       << arrival_[id] << " ns\n";
  }
  return os.str();
}

}  // namespace slm::timing
