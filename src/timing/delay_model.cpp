#include "timing/delay_model.hpp"

// Header-only today; the translation unit exists so the target always has
// at least one object and the model can grow non-inline members (e.g.
// temperature dependence) without touching the build.
