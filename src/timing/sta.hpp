// Static timing analysis over a netlist: per-net arrival times at nominal
// voltage, endpoint slacks against a clock constraint, and critical-path
// extraction. Used by the bitstream checker's strict-timing mode, by the
// floorplan rendering (sensitive endpoints), and as a cross-check for the
// event-driven simulator (STA arrival >= event-sim settle time).
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace slm::timing {

class Sta {
 public:
  /// Runs the analysis immediately (throws on cyclic netlists). The
  /// netlist must outlive the Sta (temporaries are rejected).
  explicit Sta(const netlist::Netlist& nl);
  explicit Sta(netlist::Netlist&&) = delete;

  /// Worst-case arrival time (ns) of every net at nominal voltage.
  const std::vector<double>& arrivals() const { return arrival_; }

  double arrival(netlist::NetId net) const;

  /// Arrival time of each primary output, in declaration order.
  std::vector<double> endpoint_arrivals() const;

  /// Worst arrival over all endpoints (the critical-path delay).
  double critical_delay() const;

  /// Slack of each endpoint against a clock period (ns, minus setup).
  std::vector<double> endpoint_slacks(double clock_period_ns,
                                      double setup_ns = 0.0) const;

  /// Endpoints with negative slack at the given clock.
  std::vector<std::size_t> failing_endpoints(double clock_period_ns,
                                             double setup_ns = 0.0) const;

  /// Gates on the worst path into `net` (from a primary input to `net`).
  std::vector<netlist::NetId> critical_path_to(netlist::NetId net) const;

  /// Human-readable report of the worst path to the worst endpoint.
  std::string report_critical_path() const;

  const netlist::Netlist& netlist() const { return nl_; }

 private:
  const netlist::Netlist& nl_;
  std::vector<double> arrival_;
  std::vector<netlist::NetId> worst_fanin_;  // argmax fanin per gate
};

}  // namespace slm::timing
