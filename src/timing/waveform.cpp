#include "timing/waveform.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace slm::timing {

Waveform::Waveform(bool initial, std::vector<double> toggles)
    : initial_(initial), toggles_(std::move(toggles)) {
  SLM_REQUIRE(std::is_sorted(toggles_.begin(), toggles_.end()),
              "Waveform: toggles must be time-ordered");
}

bool Waveform::final_value() const {
  return (toggles_.size() % 2 == 0) ? initial_ : !initial_;
}

double Waveform::settle_time() const {
  return toggles_.empty() ? 0.0 : toggles_.back();
}

bool Waveform::value_at(double t) const {
  // Number of toggles with time <= t.
  const auto it = std::upper_bound(toggles_.begin(), toggles_.end(), t);
  const std::size_t n = static_cast<std::size_t>(it - toggles_.begin());
  return (n % 2 == 0) ? initial_ : !initial_;
}

bool Waveform::toggles_within(double t_lo, double t_hi) const {
  const auto lo = std::upper_bound(toggles_.begin(), toggles_.end(), t_lo);
  const auto hi = std::upper_bound(toggles_.begin(), toggles_.end(), t_hi);
  return lo != hi;
}

void Waveform::append_toggle(double t) {
  SLM_REQUIRE(toggles_.empty() || t >= toggles_.back(),
              "Waveform::append_toggle: out of order");
  toggles_.push_back(t);
}

}  // namespace slm::timing
