#include "timing/capture.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace slm::timing {

OverclockedCapture::OverclockedCapture(std::vector<Waveform> endpoints,
                                       CaptureConfig cfg, std::uint64_t seed)
    : endpoints_(std::move(endpoints)), cfg_(cfg) {
  SLM_REQUIRE(!endpoints_.empty(), "OverclockedCapture: no endpoints");
  SLM_REQUIRE(cfg_.clock_period_ns > 0.0,
              "OverclockedCapture: clock period must be positive");
  Xoshiro256 rng(seed);
  const auto& normal = FastNormal::instance();
  skew_.resize(endpoints_.size());
  for (auto& s : skew_) s = normal(rng, 0.0, cfg_.endpoint_skew_sigma_ns);
}

double OverclockedCapture::effective_time(double v) const {
  return (cfg_.clock_period_ns - cfg_.setup_ns) / cfg_.delay.factor(v);
}

BitVec OverclockedCapture::sample(double v, Xoshiro256& rng) const {
  const auto& normal = FastNormal::instance();
  const double t_eff =
      effective_time(v) + normal(rng, 0.0, cfg_.common_jitter_sigma_ns);
  BitVec word(endpoints_.size());
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    const double jitter = normal(rng, 0.0, cfg_.jitter_sigma_ns);
    word.set(i, endpoints_[i].value_at(t_eff - skew_[i] + jitter));
  }
  return word;
}

bool OverclockedCapture::sample_bit(std::size_t i, double v,
                                    Xoshiro256& rng) const {
  SLM_REQUIRE(i < endpoints_.size(), "sample_bit: endpoint out of range");
  const auto& normal = FastNormal::instance();
  const double t_eff =
      effective_time(v) + normal(rng, 0.0, cfg_.common_jitter_sigma_ns);
  const double jitter = normal(rng, 0.0, cfg_.jitter_sigma_ns);
  return endpoints_[i].value_at(t_eff - skew_[i] + jitter);
}

BitVec OverclockedCapture::sample_subset(const std::vector<std::size_t>& bits,
                                         double v, Xoshiro256& rng) const {
  const auto& normal = FastNormal::instance();
  const double t_eff =
      effective_time(v) + normal(rng, 0.0, cfg_.common_jitter_sigma_ns);
  BitVec word(endpoints_.size());
  for (std::size_t i : bits) {
    SLM_REQUIRE(i < endpoints_.size(), "sample_subset: endpoint out of range");
    const double jitter = normal(rng, 0.0, cfg_.jitter_sigma_ns);
    word.set(i, endpoints_[i].value_at(t_eff - skew_[i] + jitter));
  }
  return word;
}

BitVec OverclockedCapture::reset_values() const {
  BitVec reset(endpoints_.size());
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    reset.set(i, endpoints_[i].initial_value());
  }
  return reset;
}

BitVec OverclockedCapture::toggled(const BitVec& captured) const {
  return captured ^ reset_values();
}

bool OverclockedCapture::endpoint_sensitive(std::size_t i, double v_lo,
                                            double v_hi) const {
  SLM_REQUIRE(i < endpoints_.size(), "endpoint_sensitive: out of range");
  SLM_REQUIRE(v_lo <= v_hi, "endpoint_sensitive: bad voltage range");
  // Lower voltage -> larger delay factor -> smaller effective time.
  const double t_min = effective_time(v_lo) - skew_[i];
  const double t_max = effective_time(v_hi) - skew_[i];
  return endpoints_[i].value_at(t_min) != endpoints_[i].value_at(t_max) ||
         endpoints_[i].toggles_within(t_min, t_max);
}

std::vector<std::size_t> OverclockedCapture::sensitive_endpoints(
    double v_lo, double v_hi) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (endpoint_sensitive(i, v_lo, v_hi)) out.push_back(i);
  }
  return out;
}

}  // namespace slm::timing
