#include "timing/timed_sim.hpp"

#include <deque>
#include <queue>

#include "common/error.hpp"
#include "netlist/evaluator.hpp"

namespace slm::timing {

using netlist::Gate;
using netlist::GateType;
using netlist::NetId;

TimedSimulator::TimedSimulator(const netlist::Netlist& nl)
    : nl_(nl), order_(nl.topo_order()), fanout_(nl.gate_count()) {
  for (NetId id = 0; id < nl_.gate_count(); ++id) {
    for (NetId f : nl_.gate(id).fanin) {
      fanout_[f].push_back(id);
    }
  }
}

TimedSimResult TimedSimulator::simulate_transition(const BitVec& from,
                                                   const BitVec& to) const {
  const auto& inputs = nl_.inputs();
  SLM_REQUIRE(from.size() == inputs.size() && to.size() == inputs.size(),
              "TimedSimulator: input width mismatch");

  // Settled state under `from`.
  netlist::Evaluator eval(nl_);
  std::vector<bool> value = eval.eval_nets(from);

  TimedSimResult result;
  result.net_waveforms.resize(nl_.gate_count());
  for (NetId id = 0; id < nl_.gate_count(); ++id) {
    result.net_waveforms[id] = Waveform(value[id], {});
  }

  // Inertial-delay event simulation. Every scheduled output change lives
  // in the event pool; per-gate FIFOs of pending (not yet fired) events
  // let a later opposite-polarity change cancel a pending one when the
  // pulse between them is narrower than the gate delay — which is how
  // real gates swallow glitches.
  struct Event {
    double time;
    std::uint64_t seq;
    NetId net;
    bool new_value;
    bool cancelled = false;
  };
  std::deque<Event> pool;
  struct Later {
    const std::deque<Event>* pool;
    bool operator()(std::size_t a, std::size_t b) const {
      const Event& ea = (*pool)[a];
      const Event& eb = (*pool)[b];
      return ea.time > eb.time || (ea.time == eb.time && ea.seq > eb.seq);
    }
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>, Later> queue(
      Later{&pool});
  // Pending event indices per gate, times non-decreasing.
  std::vector<std::deque<std::size_t>> pending(nl_.gate_count());
  std::uint64_t seq = 0;

  auto schedule = [&](NetId net, double t, bool val, double inertia) {
    auto& pq = pending[net];
    // Drop already-fired events from the front bookkeeping.
    while (!pq.empty() && pool[pq.front()].cancelled) pq.pop_front();

    // Effective value the net will have after all pending events.
    bool eventual = value[net];
    for (auto it = pq.rbegin(); it != pq.rend(); ++it) {
      if (!pool[*it].cancelled) {
        eventual = pool[*it].new_value;
        break;
      }
    }
    if (eventual == val) return;  // no change to schedule

    // Inertial cancellation: a pending opposite change closer than the
    // gate delay is a pulse the gate cannot produce.
    if (!pq.empty()) {
      std::size_t last = pq.back();
      while (!pq.empty() && pool[pq.back()].cancelled) pq.pop_back();
      if (!pq.empty()) {
        last = pq.back();
        if (!pool[last].cancelled && pool[last].new_value != val &&
            t - pool[last].time < inertia) {
          pool[last].cancelled = true;
          pq.pop_back();
          return;  // pulse swallowed: neither event happens
        }
      }
    }

    pool.push_back(Event{t, seq++, net, val});
    pending[net].push_back(pool.size() - 1);
    queue.push(pool.size() - 1);
  };

  // Primary input flips at t = 0 (inputs have no inertia).
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (from.get(i) != to.get(i)) {
      schedule(inputs[i], 0.0, to.get(i), 0.0);
    }
  }

  std::vector<bool> fanin_vals;
  while (!queue.empty()) {
    const std::size_t idx = queue.top();
    queue.pop();
    const Event ev = pool[idx];
    if (ev.cancelled) continue;
    // Remove from its pending FIFO.
    auto& pq = pending[ev.net];
    while (!pq.empty() && (pool[pq.front()].cancelled || pq.front() == idx)) {
      pq.pop_front();
    }
    if (value[ev.net] == ev.new_value) continue;
    value[ev.net] = ev.new_value;
    result.net_waveforms[ev.net].append_toggle(ev.time);
    ++result.total_events;

    for (NetId g_id : fanout_[ev.net]) {
      const Gate& g = nl_.gate(g_id);
      fanin_vals.clear();
      for (NetId f : g.fanin) fanin_vals.push_back(value[f]);
      const bool out = netlist::eval_gate(g.type, fanin_vals);
      schedule(g_id, ev.time + g.delay_ns, out, g.delay_ns);
    }
  }

  // Sanity: final values must equal the zero-delay evaluation of `to`.
  const auto settled = eval.eval_nets(to);
  for (NetId id = 0; id < nl_.gate_count(); ++id) {
    SLM_ASSERT(value[id] == settled[id],
               "timed simulation did not converge to the settled state");
  }

  result.endpoint_waveforms.reserve(nl_.outputs().size());
  for (const auto& port : nl_.outputs()) {
    result.endpoint_waveforms.push_back(result.net_waveforms[port.net]);
  }
  return result;
}

}  // namespace slm::timing
