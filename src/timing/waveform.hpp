// Transition waveform of a single net: an initial value plus the ordered
// list of toggle instants produced by one (reset -> measure) input change
// at nominal voltage. Sampling a waveform at an arbitrary time is the
// primitive behind both the benign sensor and the timing-violation view
// of the overclocked capture.
#pragma once

#include <cstddef>
#include <vector>

namespace slm::timing {

class Waveform {
 public:
  Waveform() = default;
  Waveform(bool initial, std::vector<double> toggles);

  bool initial_value() const { return initial_; }

  /// Value after all toggles have happened.
  bool final_value() const;

  const std::vector<double>& toggles() const { return toggles_; }
  std::size_t toggle_count() const { return toggles_.size(); }

  /// Instant of the last toggle; 0 if the net never moves.
  double settle_time() const;

  /// Value observed at time t (toggles at exactly t are counted).
  bool value_at(double t) const;

  /// True if the waveform crosses at least one toggle inside (t_lo, t_hi].
  bool toggles_within(double t_lo, double t_hi) const;

  void append_toggle(double t);

 private:
  bool initial_ = false;
  std::vector<double> toggles_;
};

}  // namespace slm::timing
