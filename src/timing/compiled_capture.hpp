// CompiledCapture — the batched fast path of OverclockedCapture.
//
// Construction flattens every endpoint's toggle list into one contiguous
// array and, for each toggle, precomputes the supply-voltage threshold at
// which the (noise-free) capture instant crosses it: the capture time
//   t(V) = (T - setup) / factor(V) - skew_i
// is monotone in V, so toggle time tau is crossed exactly when
//   V >= voltage_for_factor((T - setup) / (tau + skew_i))
// (always crossed when tau + skew_i <= 0; unreachable when the required
// factor sits below the clamp floor of VoltageDelayModel::factor). A
// noise-free endpoint query is therefore one threshold compare per
// toggle instead of a waveform walk.
//
// Noisy sampling keeps the time-domain comparison with the exact FP
// expression of the reference — t = (t_eff - skew_i) + jitter against the
// raw toggle times — because the voltage transform rounds differently and
// would break the bit-exactness contract. What the fast path changes is
// the memory layout (no per-call Waveform/BitVec churn), the branch-light
// counting kernel, and the batched jitter generation (FastNormal::fill
// over a reused scratch block, one draw per normal, same stream order).
//
// Contract, enforced by tests/property/compiled_capture_equiv_test.cpp:
// sample / sample_bit / sample_subset and the *_from_draws kernels are
// bit-exact against OverclockedCapture on the same RNG stream, including
// the number and order of draws consumed — so a campaign routed through
// CompiledCapture is bit-identical to one on the reference path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "timing/capture.hpp"

namespace slm::timing {

/// A subset of endpoints packed into self-contained contiguous buffers
/// for the hottest campaign kernel (benign HW sensor): toggle times,
/// bucket-hint grids, skews and the capture parameters are copied out of
/// the owning CompiledCapture so the per-sample loop touches one small
/// block and inlines across translation units. The comparisons run on
/// the same doubles in the same expression order, so results are
/// bit-exact against CompiledCapture (and hence OverclockedCapture).
class PackedToggleSubset {
 public:
  PackedToggleSubset() = default;

  /// Listed endpoint count; hw_from_draws consumes 1 + size() normals.
  std::size_t size() const { return meta_.size(); }

  /// Nominal-domain observation instant — identical FP expression to
  /// OverclockedCapture::effective_time, exposed so a caller driving
  /// several packed subsets of the same capture clock can divide once
  /// per sample and reuse the value (the subsets share t_base_ and the
  /// delay model, so the reused double is the same one each would have
  /// computed itself).
  double nominal_time(double v) const { return t_base_ / delay_.factor(v); }

  /// True when `o` computes bit-identical nominal_time for every v —
  /// the precondition for sharing one division across subsets.
  bool same_clock(const PackedToggleSubset& o) const {
    return t_base_ == o.t_base_ && delay_.vnom == o.delay_.vnom &&
           delay_.sensitivity_per_volt == o.delay_.sensitivity_per_volt;
  }

  /// Toggle Hamming weight over the packed endpoints at voltage v;
  /// z[0] is the common draw, z[1..size()] the per-endpoint jitters.
  std::uint32_t hw_from_draws(double v, const double* z) const {
    return hw_at_nominal(nominal_time(v), z);
  }

  /// Same, with the nominal observation instant precomputed (must equal
  /// nominal_time(v) bit-for-bit; see nominal_time).
  std::uint32_t hw_at_nominal(double t_nom, const double* z) const {
    const double t_eff = t_nom + (0.0 + common_jitter_sigma_ns_ * z[0]);
    const double sigma = jitter_sigma_ns_;
    std::uint32_t hw = 0;
    const std::size_t k = meta_.size();
    for (std::size_t j = 0; j < k; ++j) {
      const double t = t_eff - meta_[j].skew + (0.0 + sigma * z[1 + j]);
      hw += toggle_parity(j, t);
    }
    return hw;
  }

  /// Reusable lane buffers for hw_block, owned by the caller so back-to-
  /// back blocks share one allocation (thread_local at the call sites).
  struct BlockScratch {
    std::vector<double> t_eff;  ///< per-lane effective instant
    std::vector<double> t;      ///< per-lane per-endpoint query instant
    std::vector<std::uint32_t> c;  ///< per-lane toggle counts
  };

  /// Lane-parallel hw_at_nominal over a block of `lanes` pre-drawn
  /// slices: lane l uses nominal instant t_nom[l] and the draw slice
  /// z[l * stride .. l * stride + size()], and its Hamming weight is
  /// ADDED into hw[l] (callers zero or chain across parts). Each lane
  /// executes the exact scalar FP expression sequence of hw_at_nominal —
  /// the loops are merely endpoint-major so the toggle-run compares
  /// auto-vectorize across lanes — so every lane is bit-exact against
  /// hw_at_nominal(t_nom[l], z + l * stride).
  void hw_block(const double* t_nom, std::size_t lanes, const double* z,
                std::size_t stride, std::uint32_t* hw,
                BlockScratch& scratch) const;

 private:
  friend class CompiledCapture;

  /// Parity of #(toggle times of packed endpoint j <= t) — the exact
  /// upper-bound count. Toggle-heavy endpoints count a fixed-width
  /// window starting at the left grid position: pack_subset sizes the
  /// grid so every toggle comparable with t lands within wmax_[j]
  /// entries of it (one-bucket FP safety margin included), the run is
  /// padded with +inf sentinels, and entries past the true upper bound
  /// compare false on their own — so the loop's trip count is constant
  /// per endpoint and the count stays bit-exact.
  std::uint32_t toggle_parity(std::size_t j, double t) const {
    const Endpoint& m = meta_[j];
    const double* a = times_.data() + m.toff;
    if (m.window == 0) {
      const std::uint32_t n = m.count;
      std::uint32_t c = 0;
      for (std::uint32_t i = 0; i < n; ++i) c += a[i] <= t ? 1u : 0u;
      return c & 1u;
    }
    double bl = (t - m.grid_lo) * m.grid_scale - 1.0;
    bl = bl < 0.0 ? 0.0 : bl;
    bl = bl > m.buckets ? m.buckets : bl;
    const std::uint32_t lo = grid_[m.goff + static_cast<std::uint32_t>(bl)];
    const std::uint32_t w = m.window;
    std::uint32_t c = lo;
    for (std::uint32_t i = 0; i < w; ++i) c += a[lo + i] <= t ? 1u : 0u;
    return c & 1u;
  }

  /// Per-endpoint metadata, one cache-friendly record per packed
  /// endpoint instead of parallel arrays.
  struct Endpoint {
    double skew = 0.0;
    double grid_lo = 0.0;     ///< first toggle time (gridded only)
    double grid_scale = 0.0;  ///< buckets per ns
    double buckets = 0.0;     ///< bucket count as a double (clamp bound)
    std::uint32_t toff = 0;   ///< run start (padded) into times_
    std::uint32_t goff = 0;   ///< grid run start into grid_
    std::uint32_t count = 0;  ///< real toggle count
    std::uint32_t window = 0; ///< fixed window width; 0 = linear count
  };

  VoltageDelayModel delay_{};
  double t_base_ = 0.0;
  double common_jitter_sigma_ns_ = 0.0;
  double jitter_sigma_ns_ = 0.0;
  std::vector<Endpoint> meta_;
  std::vector<double> times_;        ///< toggle runs, each +inf-padded
  std::vector<std::uint16_t> grid_;  ///< boundary lower bounds, B+1 per run
};

class CompiledCapture {
 public:
  /// Compile a reference capture: same config, same skews, same physics.
  explicit CompiledCapture(const OverclockedCapture& ref);

  std::size_t endpoint_count() const { return skew_.size(); }
  const CaptureConfig& config() const { return cfg_; }

  /// Nominal-domain observation instant for supply voltage v (identical
  /// FP expression to OverclockedCapture::effective_time).
  double effective_time(double v) const { return t_base_ / cfg_.delay.factor(v); }

  /// Reset-cycle value of endpoint i.
  bool initial_value(std::size_t i) const { return initial_[i] != 0; }

  // --- Bit-exact noisy mirrors of OverclockedCapture -------------------

  /// Full endpoint word at voltage v: one common draw + one jitter draw
  /// per endpoint, identical to OverclockedCapture::sample.
  BitVec sample(double v, Xoshiro256& rng) const;

  /// One endpoint: one common draw + one jitter draw.
  bool sample_bit(std::size_t i, double v, Xoshiro256& rng) const;

  /// Listed endpoints only (other bits 0): one common draw + one jitter
  /// draw per listed endpoint, in list order.
  BitVec sample_subset(const std::vector<std::size_t>& bits, double v,
                       Xoshiro256& rng) const;

  // --- Batched kernels (pre-drawn normals) -----------------------------
  //
  // `z` points at standard normals in consumption order: z[0] is the
  // common draw, z[1..] the per-endpoint jitters. Callers fill a whole
  // batch with FastNormal::fill and slice it per sample, which keeps the
  // stream order identical to per-call sampling.

  /// Toggle Hamming weight over `idx[0..k)`: needs 1 + k normals.
  std::uint32_t hw_from_draws(const std::uint32_t* idx, std::size_t k,
                              double v, const double* z) const;

  /// Copy the listed endpoints into a self-contained PackedToggleSubset
  /// whose hw_from_draws is bit-exact against hw_from_draws(idx, ...).
  PackedToggleSubset pack_subset(const std::vector<std::uint32_t>& idx) const;

  /// Toggle bit of endpoint i: needs 2 normals.
  bool toggle_from_draws(std::size_t i, double v, const double* z) const;

  /// Add each endpoint's toggle bit into ones[0..endpoint_count()):
  /// needs 1 + endpoint_count() normals. Selection pre-pass kernel.
  void toggles_from_draws(double v, const double* z, std::size_t* ones) const;

  // --- Noise-free voltage-threshold queries ----------------------------

  /// True when the delay model is invertible (sensitivity > 0) and the
  /// per-toggle voltage thresholds were compiled.
  bool has_voltage_thresholds() const { return has_thresholds_; }

  /// Toggles of endpoint i already crossed at supply voltage v with no
  /// jitter: a threshold compare when compiled, a time-domain count
  /// otherwise. Matches counting endpoint toggles <= effective_time(v)
  /// - skew_i except on rounding-boundary ties of measure zero.
  std::size_t toggles_crossed(std::size_t i, double v) const;

  /// Noise-free captured value of endpoint i at voltage v.
  bool value_noise_free(std::size_t i, double v) const {
    return (initial_[i] ^ (toggles_crossed(i, v) & 1u)) != 0;
  }

  /// Noise-free toggle-vs-reset bit.
  bool toggled_noise_free(std::size_t i, double v) const {
    return (toggles_crossed(i, v) & 1u) != 0;
  }

  /// Endpoint can change its captured value inside [v_lo, v_hi]: some
  /// toggle's voltage threshold falls inside the band.
  bool endpoint_sensitive(std::size_t i, double v_lo, double v_hi) const {
    return toggles_crossed(i, v_hi) != toggles_crossed(i, v_lo);
  }

  /// Ascending per-toggle voltage thresholds of endpoint i (empty span
  /// when the endpoint never toggles). -inf marks always-crossed
  /// toggles, +inf unreachable ones (factor clamp).
  const double* voltage_thresholds_begin(std::size_t i) const {
    return vthresh_.data() + offsets_[i];
  }
  const double* voltage_thresholds_end(std::size_t i) const {
    return vthresh_.data() + offsets_[i + 1];
  }

 private:
  std::size_t count_crossed_time(std::size_t i, double t) const;

  CaptureConfig cfg_;
  double t_base_ = 0.0;  ///< clock_period_ns - setup_ns
  std::vector<std::uint32_t> offsets_;  ///< per endpoint, into flat arrays
  std::vector<double> times_;           ///< flattened toggle instants
  std::vector<double> vthresh_;         ///< flattened voltage thresholds
  std::vector<double> skew_;
  std::vector<std::uint8_t> initial_;
  bool has_thresholds_ = false;

  // Uniform time-bucket grids for toggle-heavy endpoints (C6288
  // diagonals): entry b of endpoint i's run is the exact lower-bound
  // toggle index of bucket boundary b (kGridBuckets + 1 entries, last is
  // the toggle count). A query counts branchlessly over the window
  // [entry(b-1), entry(b+2)) — one-bucket margins make the window
  // provably enclose every toggle comparable with t, so counts stay
  // bit-exact. Endpoints below the linear-scan cutoff, above the uint16
  // range or with a degenerate time span get an empty grid run.
  std::vector<std::uint32_t> grid_offsets_;  ///< per endpoint, into grid_
  std::vector<std::uint16_t> grid_;          ///< boundary lower bounds
  std::vector<double> grid_lo_;              ///< first toggle time
  std::vector<double> grid_scale_;           ///< buckets per ns
};

}  // namespace slm::timing
