#include "timing/compiled_capture.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace slm::timing {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Endpoints with at most this many toggles use the branchless linear
/// count; beyond it a bucket-hint grid is compiled (see grid_ members).
constexpr std::uint32_t kLinearCut = 16;

/// Buckets per gridded endpoint. The hot queries cluster around the
/// operating point, so ~2 buckets per toggle keeps the exact counting
/// window at a couple of entries.
constexpr std::uint32_t kGridBuckets = 128;

/// Minimum toggle-time span (ns) for gridding: keeps the bucket width
/// orders of magnitude above double rounding error, which the one-bucket
/// safety margin of the window query relies on.
constexpr double kMinGridSpanNs = 1e-3;

/// Branchless count of entries <= t (vectorizes; used for short runs).
inline std::size_t count_leq(const double* a, std::uint32_t n, double t) {
  std::size_t c = 0;
  for (std::uint32_t j = 0; j < n; ++j) c += a[j] <= t ? 1u : 0u;
  return c;
}

}  // namespace

CompiledCapture::CompiledCapture(const OverclockedCapture& ref)
    : cfg_(ref.config()),
      t_base_(ref.config().clock_period_ns - ref.config().setup_ns),
      skew_(ref.endpoint_skews()) {
  const auto& waveforms = ref.waveforms();
  const std::size_t e_count = waveforms.size();
  SLM_REQUIRE(e_count == skew_.size(), "CompiledCapture: skew size mismatch");

  offsets_.resize(e_count + 1);
  initial_.resize(e_count);
  std::size_t total = 0;
  for (std::size_t i = 0; i < e_count; ++i) {
    offsets_[i] = static_cast<std::uint32_t>(total);
    initial_[i] = waveforms[i].initial_value() ? 1 : 0;
    total += waveforms[i].toggle_count();
  }
  offsets_[e_count] = static_cast<std::uint32_t>(total);
  SLM_REQUIRE(total <= 0xffffffffu, "CompiledCapture: too many toggles");

  times_.reserve(total);
  for (const auto& wf : waveforms) {
    times_.insert(times_.end(), wf.toggles().begin(), wf.toggles().end());
  }

  // Bucket grids for the toggle-heavy endpoints: kGridBuckets + 1
  // lower-bound positions per endpoint (entry b = first toggle index at
  // or past bucket boundary b; the final entry is the toggle count).
  grid_offsets_.assign(e_count + 1, 0);
  grid_lo_.assign(e_count, 0.0);
  grid_scale_.assign(e_count, 0.0);
  for (std::size_t i = 0; i < e_count; ++i) {
    const std::uint32_t n = offsets_[i + 1] - offsets_[i];
    grid_offsets_[i] = static_cast<std::uint32_t>(grid_.size());
    // Degenerate spans and uint16-overflowing toggle counts fall back to
    // the exact linear count.
    if (n <= kLinearCut || n > 0xffff) continue;
    const double* a = times_.data() + offsets_[i];
    const double lo = a[0];
    const double hi = a[n - 1];
    if (!(hi - lo > kMinGridSpanNs)) continue;
    grid_lo_[i] = lo;
    grid_scale_[i] = static_cast<double>(kGridBuckets) / (hi - lo);
    for (std::uint32_t b = 0; b < kGridBuckets; ++b) {
      const double boundary =
          lo + static_cast<double>(b) / grid_scale_[i];
      grid_.push_back(static_cast<std::uint16_t>(
          std::lower_bound(a, a + n, boundary) - a));
    }
    grid_.push_back(static_cast<std::uint16_t>(n));
  }
  grid_offsets_[e_count] = static_cast<std::uint32_t>(grid_.size());

  // Voltage thresholds: toggle tau of endpoint i is crossed (noise-free)
  // iff tau + skew_i <= t_base / factor(v). With a = tau + skew_i:
  //   a <= 0          -> crossed at every voltage (-inf threshold)
  //   t_base / a < f_min -> the clamp floor keeps it unreachable (+inf)
  //   otherwise       -> v >= voltage_for_factor(t_base / a)
  // The map is monotone in tau, so each endpoint's thresholds stay
  // ascending and toggles_crossed is one upper_bound.
  const double k_sens = cfg_.delay.sensitivity_per_volt;
  has_thresholds_ = k_sens > 0.0 && t_base_ > 0.0;
  if (has_thresholds_) {
    const double f_min = cfg_.delay.factor(kInf);  // the clamp floor
    vthresh_.resize(total);
    for (std::size_t i = 0; i < e_count; ++i) {
      for (std::uint32_t j = offsets_[i]; j < offsets_[i + 1]; ++j) {
        const double a = times_[j] + skew_[i];
        if (a <= 0.0) {
          vthresh_[j] = -kInf;
        } else {
          const double f = t_base_ / a;
          vthresh_[j] = f < f_min ? kInf : cfg_.delay.voltage_for_factor(f);
        }
      }
      SLM_REQUIRE(std::is_sorted(vthresh_.begin() + offsets_[i],
                                 vthresh_.begin() + offsets_[i + 1]),
                  "CompiledCapture: thresholds not monotone");
    }
  }
}

BitVec CompiledCapture::sample(double v, Xoshiro256& rng) const {
  const auto& normal = FastNormal::instance();
  const double t_eff =
      effective_time(v) + normal(rng, 0.0, cfg_.common_jitter_sigma_ns);
  const std::size_t e_count = skew_.size();
  BitVec word(e_count);
  for (std::size_t i = 0; i < e_count; ++i) {
    const double jitter = normal(rng, 0.0, cfg_.jitter_sigma_ns);
    const double t = t_eff - skew_[i] + jitter;
    word.set(i, (initial_[i] ^ (count_crossed_time(i, t) & 1u)) != 0);
  }
  return word;
}

bool CompiledCapture::sample_bit(std::size_t i, double v,
                                 Xoshiro256& rng) const {
  SLM_REQUIRE(i < skew_.size(), "sample_bit: endpoint out of range");
  const auto& normal = FastNormal::instance();
  const double t_eff =
      effective_time(v) + normal(rng, 0.0, cfg_.common_jitter_sigma_ns);
  const double jitter = normal(rng, 0.0, cfg_.jitter_sigma_ns);
  const double t = t_eff - skew_[i] + jitter;
  return (initial_[i] ^ (count_crossed_time(i, t) & 1u)) != 0;
}

BitVec CompiledCapture::sample_subset(const std::vector<std::size_t>& bits,
                                      double v, Xoshiro256& rng) const {
  const auto& normal = FastNormal::instance();
  const double t_eff =
      effective_time(v) + normal(rng, 0.0, cfg_.common_jitter_sigma_ns);
  BitVec word(skew_.size());
  for (std::size_t i : bits) {
    SLM_REQUIRE(i < skew_.size(), "sample_subset: endpoint out of range");
    const double jitter = normal(rng, 0.0, cfg_.jitter_sigma_ns);
    const double t = t_eff - skew_[i] + jitter;
    word.set(i, (initial_[i] ^ (count_crossed_time(i, t) & 1u)) != 0);
  }
  return word;
}

std::uint32_t CompiledCapture::hw_from_draws(const std::uint32_t* idx,
                                             std::size_t k, double v,
                                             const double* z) const {
  const double t_eff =
      effective_time(v) + (0.0 + cfg_.common_jitter_sigma_ns * z[0]);
  const double sigma = cfg_.jitter_sigma_ns;
  std::uint32_t hw = 0;
  for (std::size_t j = 0; j < k; ++j) {
    const std::uint32_t e = idx[j];
    const double t = t_eff - skew_[e] + (0.0 + sigma * z[1 + j]);
    hw += static_cast<std::uint32_t>(count_crossed_time(e, t) & 1u);
  }
  return hw;
}

PackedToggleSubset CompiledCapture::pack_subset(
    const std::vector<std::uint32_t>& idx) const {
  PackedToggleSubset ps;
  ps.delay_ = cfg_.delay;
  ps.t_base_ = t_base_;
  ps.common_jitter_sigma_ns_ = cfg_.common_jitter_sigma_ns;
  ps.jitter_sigma_ns_ = cfg_.jitter_sigma_ns;
  // Bucket boundaries are refined per endpoint until the widest
  // [entry(m-1), entry(m+2)) window holds at most this many toggles, so
  // the hot loop's trip count is both tiny and constant per endpoint.
  constexpr std::uint32_t kTargetWindow = 4;
  constexpr std::uint32_t kMaxBuckets = 2048;
  std::vector<std::uint16_t> entries;
  for (std::uint32_t e : idx) {
    SLM_REQUIRE(e < skew_.size(), "pack_subset: endpoint out of range");
    const double* a = times_.data() + offsets_[e];
    const std::uint32_t n = offsets_[e + 1] - offsets_[e];
    PackedToggleSubset::Endpoint m;
    m.skew = skew_[e];
    m.toff = static_cast<std::uint32_t>(ps.times_.size());
    m.goff = static_cast<std::uint32_t>(ps.grid_.size());
    m.count = n;
    ps.times_.insert(ps.times_.end(), a, a + n);
    if (n > kLinearCut && n <= 0xffff && a[n - 1] - a[0] > kMinGridSpanNs) {
      const double lo = a[0];
      std::uint32_t buckets = kGridBuckets;
      std::uint32_t window = 0;
      for (;; buckets *= 2) {
        m.grid_scale = static_cast<double>(buckets) / (a[n - 1] - lo);
        entries.assign(buckets + 1, static_cast<std::uint16_t>(n));
        for (std::uint32_t b = 0; b < buckets; ++b) {
          const double boundary = lo + static_cast<double>(b) / m.grid_scale;
          entries[b] = static_cast<std::uint16_t>(
              std::lower_bound(a, a + n, boundary) - a);
        }
        window = 0;
        for (std::uint32_t q = 0; q <= buckets; ++q) {
          const std::uint32_t right = entries[std::min(q + 2, buckets)];
          const std::uint32_t left = entries[q > 0 ? q - 1 : 0];
          window = std::max(window, right - left);
        }
        if (window <= kTargetWindow || buckets >= kMaxBuckets) break;
      }
      m.grid_lo = lo;
      m.buckets = static_cast<double>(buckets);
      m.window = window;
      ps.grid_.insert(ps.grid_.end(), entries.begin(), entries.end());
      ps.times_.insert(ps.times_.end(), window, kInf);  // sentinel pad
    }
    ps.meta_.push_back(m);
  }
  return ps;
}

void PackedToggleSubset::hw_block(const double* t_nom, std::size_t lanes,
                                  const double* z, std::size_t stride,
                                  std::uint32_t* hw,
                                  BlockScratch& scratch) const {
  scratch.t_eff.resize(lanes);
  scratch.t.resize(lanes);
  scratch.c.resize(lanes);
  double* const te = scratch.t_eff.data();
  double* const tq = scratch.t.data();
  std::uint32_t* const c = scratch.c.data();
  // Same expressions as hw_at_nominal, one lane per slot: the scalar
  // kernel's t_eff / t / parity arithmetic is replayed verbatim so every
  // lane's double sequence is bit-identical to its scalar run.
  const double csigma = common_jitter_sigma_ns_;
  for (std::size_t l = 0; l < lanes; ++l) {
    te[l] = t_nom[l] + (0.0 + csigma * z[l * stride]);
  }
  const double sigma = jitter_sigma_ns_;
  const std::size_t k = meta_.size();
  for (std::size_t j = 0; j < k; ++j) {
    const Endpoint& m = meta_[j];
    const double skew = m.skew;
    const double* const zj = z + 1 + j;
    for (std::size_t l = 0; l < lanes; ++l) {
      tq[l] = te[l] - skew + (0.0 + sigma * zj[l * stride]);
    }
    const double* const a = times_.data() + m.toff;
    if (m.window == 0) {
      // Linear endpoints (count <= kLinearCut): toggle-outer, lane-inner
      // unit-stride compares — the loop the auto-vectorizer turns into
      // packed compare+accumulate across the block.
      const std::uint32_t n = m.count;
      for (std::size_t l = 0; l < lanes; ++l) c[l] = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        const double ai = a[i];
        for (std::size_t l = 0; l < lanes; ++l) c[l] += ai <= tq[l] ? 1u : 0u;
      }
      for (std::size_t l = 0; l < lanes; ++l) hw[l] += c[l] & 1u;
    } else {
      // Gridded endpoints: the bucket hint diverges per lane, so each
      // lane runs its own fixed-width window (<= kTargetWindow entries,
      // +inf sentinel padded) — short enough that the lane loop is the
      // parallel dimension that matters.
      const std::uint16_t* const g = grid_.data() + m.goff;
      const std::uint32_t w = m.window;
      for (std::size_t l = 0; l < lanes; ++l) {
        const double t = tq[l];
        double bl = (t - m.grid_lo) * m.grid_scale - 1.0;
        bl = bl < 0.0 ? 0.0 : bl;
        bl = bl > m.buckets ? m.buckets : bl;
        const std::uint32_t lo = g[static_cast<std::uint32_t>(bl)];
        std::uint32_t cc = lo;
        for (std::uint32_t i = 0; i < w; ++i) cc += a[lo + i] <= t ? 1u : 0u;
        hw[l] += cc & 1u;
      }
    }
  }
}

bool CompiledCapture::toggle_from_draws(std::size_t i, double v,
                                        const double* z) const {
  const double t_eff =
      effective_time(v) + (0.0 + cfg_.common_jitter_sigma_ns * z[0]);
  const double t = t_eff - skew_[i] + (0.0 + cfg_.jitter_sigma_ns * z[1]);
  return (count_crossed_time(i, t) & 1u) != 0;
}

void CompiledCapture::toggles_from_draws(double v, const double* z,
                                         std::size_t* ones) const {
  const double t_eff =
      effective_time(v) + (0.0 + cfg_.common_jitter_sigma_ns * z[0]);
  const double sigma = cfg_.jitter_sigma_ns;
  const std::size_t e_count = skew_.size();
  for (std::size_t i = 0; i < e_count; ++i) {
    const double t = t_eff - skew_[i] + (0.0 + sigma * z[1 + i]);
    ones[i] += count_crossed_time(i, t) & 1u;
  }
}

std::size_t CompiledCapture::toggles_crossed(std::size_t i, double v) const {
  SLM_REQUIRE(i < skew_.size(), "toggles_crossed: endpoint out of range");
  if (has_thresholds_) {
    return count_leq(vthresh_.data() + offsets_[i],
                     offsets_[i + 1] - offsets_[i], v);
  }
  return count_crossed_time(i, effective_time(v) - skew_[i]);
}

std::size_t CompiledCapture::count_crossed_time(std::size_t i,
                                                double t) const {
  const double* a = times_.data() + offsets_[i];
  const std::uint32_t n = offsets_[i + 1] - offsets_[i];
  const std::uint32_t gb = grid_offsets_[i];
  if (grid_offsets_[i + 1] == gb) return count_leq(a, n, t);
  // Enclosing-window count: back the bucket index off by one on the left
  // and two on the right, so FP rounding in fb (orders of magnitude below
  // one bucket, see kMinGridSpanNs) cannot move a toggle out of the
  // window. Everything left of the window is <= t, everything right of it
  // is > t, and the branchless count inside is exact.
  const double fb = (t - grid_lo_[i]) * grid_scale_[i];
  double bl = fb - 1.0;
  if (!(bl > 0.0)) bl = 0.0;
  if (bl > static_cast<double>(kGridBuckets)) bl = kGridBuckets;
  double br = fb + 2.0;
  if (!(br > 0.0)) br = 0.0;
  if (br > static_cast<double>(kGridBuckets)) br = kGridBuckets;
  const std::uint32_t lo = grid_[gb + static_cast<std::uint32_t>(bl)];
  const std::uint32_t hi = grid_[gb + static_cast<std::uint32_t>(br)];
  return lo + count_leq(a + lo, hi - lo, t);
}

}  // namespace slm::timing
