// Overclocked endpoint capture — the physical core of the paper.
//
// A benign circuit is clocked at a period far below its critical delay.
// At each measure cycle, every endpoint register captures the transient
// value of its waveform at the clock edge. Supply voltage rescales the
// time axis (see VoltageDelayModel), so
//
//   captured_i(V) = waveform_i.value_at( T / factor(V) - skew_i + jitter )
//
// Per-endpoint static skew models clock skew + process variation; jitter
// models cycle-to-cycle noise. An endpoint "toggles" when the captured
// value differs from its reset-cycle value (the waveform's initial value).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "timing/delay_model.hpp"
#include "timing/waveform.hpp"

namespace slm::timing {

struct CaptureConfig {
  double clock_period_ns = 1000.0 / 300.0;  ///< 300 MHz overclock
  VoltageDelayModel delay;

  /// Cycle-to-cycle capture jitter (ns, sigma), applied per endpoint and
  /// per sample in the nominal-time domain.
  double jitter_sigma_ns = 0.060;

  /// Common-mode jitter (ns, sigma): one draw per sample shared by every
  /// endpoint — launch-clock jitter plus unmodelled common supply noise.
  /// This is what limits the benefit of averaging many endpoint bits.
  double common_jitter_sigma_ns = 0.120;

  /// Static per-endpoint capture-time offset (ns, sigma), drawn once.
  double endpoint_skew_sigma_ns = 0.080;

  /// Setup time subtracted from the clock period (ns).
  double setup_ns = 0.05;
};

class OverclockedCapture {
 public:
  /// `endpoints` are the waveforms of one (reset -> measure) transition.
  /// `seed` fixes the static skew draw.
  OverclockedCapture(std::vector<Waveform> endpoints, CaptureConfig cfg,
                     std::uint64_t seed);

  std::size_t endpoint_count() const { return endpoints_.size(); }

  const CaptureConfig& config() const { return cfg_; }
  const std::vector<Waveform>& waveforms() const { return endpoints_; }
  const std::vector<double>& endpoint_skews() const { return skew_; }

  /// Nominal-domain observation instant for supply voltage v.
  double effective_time(double v) const;

  /// Capture the full endpoint word at voltage v (noisy).
  BitVec sample(double v, Xoshiro256& rng) const;

  /// Capture a single endpoint at voltage v (noisy) — the "single path
  /// endpoint" attack mode needs nothing more.
  bool sample_bit(std::size_t i, double v, Xoshiro256& rng) const;

  /// Capture only the listed endpoints (values appear at the same indices
  /// of the returned word; all other bits are 0). One common-jitter draw
  /// is shared, as in sample(). Campaign hot path for bits-of-interest.
  BitVec sample_subset(const std::vector<std::size_t>& bits, double v,
                       Xoshiro256& rng) const;

  /// Reset-cycle values of all endpoints (what a toggle is measured
  /// against).
  BitVec reset_values() const;

  /// toggled = captured XOR reset values.
  BitVec toggled(const BitVec& captured) const;

  /// True if endpoint i can change its captured value somewhere within
  /// the supply range [v_lo, v_hi] (ignoring noise) — the deterministic
  /// notion of "sensitive endpoint" used for floorplans.
  bool endpoint_sensitive(std::size_t i, double v_lo, double v_hi) const;

  /// Indices of all sensitive endpoints for the range.
  std::vector<std::size_t> sensitive_endpoints(double v_lo,
                                               double v_hi) const;

 private:
  std::vector<Waveform> endpoints_;
  CaptureConfig cfg_;
  std::vector<double> skew_;
};

}  // namespace slm::timing
