// Event-driven gate-level timing simulation (transport delay).
//
// Given a netlist settled under input vector `from`, apply input vector
// `to` at t = 0 and propagate events through the gates using their nominal
// intrinsic delays. The result is a Waveform per net. One such simulation
// per (reset -> measure) stimulus pair is all the benign-sensor machinery
// needs: voltage only rescales the time axis afterwards.
#pragma once

#include <vector>

#include "common/bitvec.hpp"
#include "netlist/netlist.hpp"
#include "timing/waveform.hpp"

namespace slm::timing {

struct TimedSimResult {
  std::vector<Waveform> net_waveforms;  ///< indexed by NetId

  /// Waveforms of the primary outputs, in declaration order.
  std::vector<Waveform> endpoint_waveforms;

  std::size_t total_events = 0;  ///< toggles applied (activity measure)
};

class TimedSimulator {
 public:
  /// The netlist must outlive the simulator (temporaries are rejected).
  explicit TimedSimulator(const netlist::Netlist& nl);
  explicit TimedSimulator(netlist::Netlist&&) = delete;

  /// Simulate the transition `from` -> `to` (input vectors in declaration
  /// order). Both vectors must have one bit per primary input.
  TimedSimResult simulate_transition(const BitVec& from, const BitVec& to) const;

  const netlist::Netlist& netlist() const { return nl_; }

 private:
  const netlist::Netlist& nl_;
  std::vector<netlist::NetId> order_;
  std::vector<std::vector<netlist::NetId>> fanout_;
};

}  // namespace slm::timing
