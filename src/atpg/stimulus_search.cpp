#include "atpg/stimulus_search.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "timing/timed_sim.hpp"

namespace slm::atpg {

namespace {

BitVec random_vector(std::size_t width, Xoshiro256& rng) {
  BitVec v(width);
  for (std::size_t i = 0; i < width; ++i) v.set(i, rng.coin());
  return v;
}

}  // namespace

StimulusSearch::StimulusSearch(const netlist::Netlist& nl,
                               StimulusSearchConfig cfg)
    : nl_(nl), cfg_(cfg) {
  SLM_REQUIRE(!nl.outputs().empty(), "StimulusSearch: circuit has no outputs");
}

StimulusSearch::Scored StimulusSearch::evaluate_band(const BitVec& reset,
                                                     const BitVec& measure,
                                                     double lo,
                                                     double hi) const {
  timing::TimedSimulator sim(nl_);
  const auto result = sim.simulate_transition(reset, measure);
  Scored s{0.0, 0.0, 0};
  for (const auto& wf : result.endpoint_waveforms) {
    const double settle = wf.settle_time();
    if (settle > s.max_settle) s.max_settle = settle;
    if (wf.toggles_within(lo, hi)) ++s.in_band;
  }
  // Primary objective: endpoints toggling inside the band. The small
  // settle-time bonus gives the hill climber a gradient across the
  // otherwise flat zero-in-band plateau (it rewards building up longer
  // propagation before any endpoint actually reaches the band).
  s.score = static_cast<double>(s.in_band) +
            0.001 * std::min(s.max_settle, hi);
  return s;
}

StimulusSearch::Scored StimulusSearch::evaluate_path(
    const BitVec& reset, const BitVec& measure, std::size_t endpoint) const {
  timing::TimedSimulator sim(nl_);
  const auto result = sim.simulate_transition(reset, measure);
  const auto& wf = result.endpoint_waveforms[endpoint];
  Scored s{wf.settle_time(), 0.0, 0};
  for (const auto& w : result.endpoint_waveforms) {
    if (w.settle_time() > s.max_settle) s.max_settle = w.settle_time();
  }
  s.in_band = wf.toggle_count() > 0 ? 1 : 0;
  return s;
}

template <typename ScoreFn>
StimulusPair StimulusSearch::search(ScoreFn&& fn) {
  const std::size_t width = nl_.inputs().size();
  Xoshiro256 rng(cfg_.seed);

  StimulusPair best;
  best.reset = BitVec(width);
  best.measure = BitVec(width);
  {
    const Scored s = fn(best.reset, best.measure);
    best.score = s.score;
    best.max_settle_ns = s.max_settle;
    best.endpoints_in_band = s.in_band;
  }

  // Structured seeds first: the classic delay-test patterns (solid and
  // alternating fills and their single-bit perturbations) excite long
  // propagate chains that pure random vectors essentially never hit —
  // e.g. a ripple carry needs an unbroken ~100-bit propagate run.
  {
    BitVec zeros(width), ones(width), alt_a(width), alt_b(width);
    ones.set_all(true);
    for (std::size_t i = 0; i < width; ++i) {
      alt_a.set(i, i % 2 == 0);
      alt_b.set(i, i % 2 == 1);
    }
    BitVec ones_lsb = ones;
    ones_lsb.flip(0);
    BitVec zeros_lsb = zeros;
    zeros_lsb.flip(0);
    const BitVec* seeds[][2] = {
        {&zeros, &ones},     {&ones, &zeros},   {&zeros, &zeros_lsb},
        {&ones, &ones_lsb},  {&alt_a, &alt_b},  {&alt_a, &ones},
        {&zeros, &alt_a},    {&ones_lsb, &ones},
    };
    for (const auto& seed : seeds) {
      const Scored s = fn(*seed[0], *seed[1]);
      if (s.score > best.score) {
        best.reset = *seed[0];
        best.measure = *seed[1];
        best.score = s.score;
        best.max_settle_ns = s.max_settle;
        best.endpoints_in_band = s.in_band;
      }
    }
  }
  for (const auto& [r, m] : cfg_.seed_pairs) {
    SLM_REQUIRE(r.size() == width && m.size() == width,
                "StimulusSearch: seed pair width mismatch");
    const Scored s = fn(r, m);
    if (s.score > best.score) {
      best.reset = r;
      best.measure = m;
      best.score = s.score;
      best.max_settle_ns = s.max_settle;
      best.endpoints_in_band = s.in_band;
    }
  }

  // Random exploration.
  for (std::size_t t = 0; t < cfg_.random_trials; ++t) {
    BitVec reset = random_vector(width, rng);
    BitVec measure = random_vector(width, rng);
    const Scored s = fn(reset, measure);
    if (s.score > best.score) {
      best.reset = std::move(reset);
      best.measure = std::move(measure);
      best.score = s.score;
      best.max_settle_ns = s.max_settle;
      best.endpoints_in_band = s.in_band;
    }
  }

  // Stochastic hill climbing on the best pair: 1-3 random bit flips per
  // move, ties accepted so the walk can cross score plateaus (the settle
  // time of a carry chain only responds once a propagate run forms).
  for (std::size_t it = 0; it < cfg_.hill_climb_iters; ++it) {
    BitVec reset = best.reset;
    BitVec measure = best.measure;
    const std::size_t flips = 1 + it % 3;
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t bit = rng.uniform_int(width);
      if (rng.coin()) {
        measure.flip(bit);
      } else {
        reset.flip(bit);
      }
    }
    const Scored s = fn(reset, measure);
    const bool better = s.score > best.score;
    const bool tie_drift = s.score == best.score && rng.coin();
    if (better || tie_drift) {
      best.reset = std::move(reset);
      best.measure = std::move(measure);
      best.score = s.score;
      best.max_settle_ns = s.max_settle;
      best.endpoints_in_band = s.in_band;
    }
  }
  return best;
}

StimulusPair StimulusSearch::find_sensor_stimulus(double band_lo_ns,
                                                  double band_hi_ns) {
  SLM_REQUIRE(band_lo_ns < band_hi_ns, "find_sensor_stimulus: bad band");
  return search([&](const BitVec& r, const BitVec& m) {
    return evaluate_band(r, m, band_lo_ns, band_hi_ns);
  });
}

StimulusPair StimulusSearch::find_path_stimulus(std::size_t endpoint) {
  SLM_REQUIRE(endpoint < nl_.outputs().size(),
              "find_path_stimulus: endpoint out of range");
  return search([&](const BitVec& r, const BitVec& m) {
    return evaluate_path(r, m, endpoint);
  });
}

}  // namespace slm::atpg
