// Stimulus-pair search for arbitrary circuits — the Discussion's point
// that an attacker does not need a hand-crafted carry chain: ATPG-style
// path sensitisation finds (reset, measure) vectors that launch long
// transitions into many endpoints.
//
// The search is delay-aware random exploration plus greedy bit-flip hill
// climbing, scored by the event-driven timing simulator: a candidate pair
// is good when many endpoint settle times land inside the sensitivity
// band around the overclocked capture instant (or, in single-path mode,
// when one endpoint's settle time is maximised).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitvec.hpp"
#include "netlist/netlist.hpp"

namespace slm::atpg {

struct StimulusSearchConfig {
  std::size_t random_trials = 150;
  std::size_t hill_climb_iters = 300;
  std::uint64_t seed = 0xa7b6;

  /// Caller-supplied candidate (reset, measure) pairs evaluated before
  /// the random phase — the role functional delay-test patterns play in
  /// real ATPG flows (e.g. the carry-propagate pattern for adders).
  std::vector<std::pair<BitVec, BitVec>> seed_pairs;
};

struct StimulusPair {
  BitVec reset;
  BitVec measure;
  double score = 0.0;
  double max_settle_ns = 0.0;        ///< slowest endpoint settle time
  std::size_t endpoints_in_band = 0; ///< endpoints with settle in band
};

class StimulusSearch {
 public:
  /// The netlist must outlive the search (temporaries are rejected).
  StimulusSearch(const netlist::Netlist& nl, StimulusSearchConfig cfg = {});
  StimulusSearch(netlist::Netlist&&, StimulusSearchConfig = {}) = delete;

  /// Maximise the number of endpoints whose settle time falls inside
  /// [band_lo_ns, band_hi_ns] — the band the capture clock sweeps under
  /// voltage fluctuation.
  StimulusPair find_sensor_stimulus(double band_lo_ns, double band_hi_ns);

  /// Maximise the settle time of a single endpoint (single-path sensor).
  StimulusPair find_path_stimulus(std::size_t endpoint);

 private:
  struct Scored {
    double score;
    double max_settle;
    std::size_t in_band;
  };

  template <typename ScoreFn>
  StimulusPair search(ScoreFn&& fn);

  Scored evaluate_band(const BitVec& reset, const BitVec& measure,
                       double lo, double hi) const;
  Scored evaluate_path(const BitVec& reset, const BitVec& measure,
                       std::size_t endpoint) const;

  const netlist::Netlist& nl_;
  StimulusSearchConfig cfg_;
};

}  // namespace slm::atpg
