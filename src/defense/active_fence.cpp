#include "defense/active_fence.hpp"

#include "common/error.hpp"

namespace slm::defense {

ActiveFence::ActiveFence(const ActiveFenceConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  SLM_REQUIRE(cfg_.base_current_a >= 0.0 && cfg_.random_current_a >= 0.0,
              "ActiveFence: currents must be non-negative");
}

double ActiveFence::next_cycle_current() { return cycle_current(rng_); }

}  // namespace slm::defense
