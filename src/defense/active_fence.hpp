// Active fence countermeasure (Krautter et al., ICCAD'19; Glamocanin et
// al., DDECS'23 — the "hiding" defences the paper's related-work section
// points to): a ring of always-on noise generators around the victim
// that injects randomised switching current into the shared PDN, lowering
// the SNR any voltage sensor — conspicuous or benign — can extract.
//
// Model: per victim clock cycle the fence draws a base current plus a
// uniformly re-randomised component. The randomisation is the defence;
// the base only shifts the DC point.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace slm::defense {

struct ActiveFenceConfig {
  /// Mean fence draw (A). Shifts the operating point only.
  double base_current_a = 0.05;

  /// Peak-to-peak randomised component (A), re-drawn every victim cycle.
  /// This is the knob that buys SNR reduction for power cost.
  double random_current_a = 0.0;

  std::uint64_t seed = 0xfe9ce;
};

class ActiveFence {
 public:
  explicit ActiveFence(const ActiveFenceConfig& cfg);

  /// Fence current for the next victim cycle (stateful RNG; determinism
  /// contract v1 — consecutive traces share one sequential stream).
  double next_cycle_current();

  /// Counter-indexed fence stream for determinism contract v2: the
  /// stream for trace `trace_index`, derived statelessly from the fence
  /// seed via Xoshiro256::trace_stream with the fence domain constant.
  /// Any lane can materialise any trace's fence draws independently.
  Xoshiro256 trace_rng(std::uint64_t trace_index) const {
    return Xoshiro256::trace_stream(cfg_.seed, kTraceDomainFence,
                                    trace_index);
  }

  /// One cycle's fence current drawn from a caller-owned stream (the
  /// stateless core both next_cycle_current and the v2 per-trace path
  /// share, so the per-cycle expression is bit-identical across
  /// contracts).
  double cycle_current(Xoshiro256& rng) const {
    return cfg_.base_current_a + rng.uniform() * cfg_.random_current_a;
  }

  /// Average power-overhead current (A) — what the defender pays.
  double mean_current_a() const {
    return cfg_.base_current_a + 0.5 * cfg_.random_current_a;
  }

  const ActiveFenceConfig& config() const { return cfg_; }

  /// Fence noise-stream position, snapshotted by campaign checkpoints so
  /// a resumed run draws the identical randomised current sequence.
  std::array<std::uint64_t, 4> rng_state() const { return rng_.state(); }
  void set_rng_state(const std::array<std::uint64_t, 4>& s) {
    rng_.set_state(s);
  }

 private:
  ActiveFenceConfig cfg_;
  Xoshiro256 rng_;
};

}  // namespace slm::defense
