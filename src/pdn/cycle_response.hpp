// Fast linear campaign engine.
//
// The RLC PDN is linear, and a CPA campaign evaluates the *same* current
// template hundreds of thousands of times with only the per-cycle
// amplitudes (the victim's Hamming distances) changing. So we precompute,
// once, the voltage deviation each unit of per-cycle current causes at
// each sensor sampling instant; per trace, the voltage vector is then a
// tiny matrix-vector product instead of a full ODE run.
#pragma once

#include <cstddef>
#include <vector>

#include "pdn/rlc.hpp"

namespace slm::pdn {

class CycleResponseMatrix {
 public:
  /// Empty matrix; fill via build(). Using an empty matrix throws.
  CycleResponseMatrix() = default;

  /// Build by simulation: for each activity cycle c (a rectangular unit
  /// current pulse over [cycle_start[c], cycle_start[c] + cycle_len_ns)),
  /// run the PDN and record the voltage *deviation from DC* at each
  /// sample instant.
  static CycleResponseMatrix build(const PdnConfig& cfg,
                                   const std::vector<double>& sample_times_ns,
                                   const std::vector<double>& cycle_starts_ns,
                                   double cycle_len_ns);

  std::size_t sample_count() const { return sample_times_.size(); }
  std::size_t cycle_count() const { return cycle_starts_.size(); }

  double dc_voltage() const { return v_dc_; }
  const std::vector<double>& sample_times_ns() const { return sample_times_; }

  /// Voltage at one sample instant for per-cycle currents `i_cycles`
  /// (amps). i_cycles.size() must equal cycle_count().
  double voltage_at(std::size_t sample,
                    const std::vector<double>& i_cycles) const;

  /// All sample voltages at once (appends to `out`, which is resized).
  void voltages(const std::vector<double>& i_cycles,
                std::vector<double>& out) const;

  /// Blocked voltages(): `lanes` traces evaluated at once. Input currents
  /// are cycle-major — lane l's current for cycle c lives at
  /// `ic_t[c * stride + l]` (stride >= lanes) — so the lane-inner loop is
  /// unit-stride; output voltages are lane-major (`out[l * sample_count()
  /// + s]`). Each lane accumulates its per-sample dot product in the same
  /// cycle order as voltages(), so per-lane results are bit-identical to
  /// `lanes` scalar calls; the scalar voltages() chain is latency-bound
  /// (one FP add per cycle, no reassociation), which is exactly what the
  /// lane-parallel form hides. `simd = false` runs the per-lane scalar
  /// loop instead (same arithmetic, same results).
  void voltages_block(const double* ic_t, std::size_t lanes,
                      std::size_t stride, double* out, bool simd) const;

  /// Raw response entry: dV at `sample` per amp in `cycle`.
  double response(std::size_t sample, std::size_t cycle) const;

 private:
  double v_dc_ = 0.0;
  std::vector<double> sample_times_;
  std::vector<double> cycle_starts_;
  // Row-major [sample][cycle].
  std::vector<double> m_;
};

}  // namespace slm::pdn
