// Load-current generators for the PDN: the RO power-waster grid the paper
// uses as a controlled aggressor, plus simple step/pulse sources for
// tests and ablations.
#pragma once

#include <cstddef>
#include <vector>

namespace slm::pdn {

/// The paper's 8000-RO grid, toggled at 4 MHz: within each toggle period
/// the ROs are *gradually* enabled (current ramps linearly from 0 to the
/// full grid current) and then *suddenly* disabled (instant drop). The
/// sudden release excites the PDN resonance — the overshoot in Fig. 6.
struct RoGridConfig {
  std::size_t ro_count = 8000;
  double current_per_ro_a = 0.35e-3;  ///< average draw of one toggling RO
  double toggle_freq_mhz = 4.0;
  double ramp_fraction = 0.85;  ///< fraction of the period spent ramping up
};

class RoGridAggressor {
 public:
  explicit RoGridAggressor(const RoGridConfig& cfg);

  double max_current_a() const;

  /// Grid current at absolute time t (ns); zero before `enable_at_ns`.
  double current_at(double t_ns, double enable_at_ns) const;

  /// Sampled current sequence over [0, n*dt) with the grid enabled at
  /// `enable_at_ns`.
  std::vector<double> sequence(std::size_t n, double dt_ns,
                               double enable_at_ns) const;

  const RoGridConfig& config() const { return cfg_; }

 private:
  RoGridConfig cfg_;
};

/// Rectangular pulse: `amps` between [start_ns, start_ns + width_ns).
struct PulseSource {
  double amps = 1.0;
  double start_ns = 0.0;
  double width_ns = 10.0;

  double current_at(double t_ns) const {
    return (t_ns >= start_ns && t_ns < start_ns + width_ns) ? amps : 0.0;
  }
};

/// Current step at `start_ns`.
struct StepSource {
  double amps = 1.0;
  double start_ns = 0.0;

  double current_at(double t_ns) const { return t_ns >= start_ns ? amps : 0.0; }
};

}  // namespace slm::pdn
