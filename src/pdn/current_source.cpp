#include "pdn/current_source.hpp"

#include <cmath>

#include "common/error.hpp"

namespace slm::pdn {

RoGridAggressor::RoGridAggressor(const RoGridConfig& cfg) : cfg_(cfg) {
  SLM_REQUIRE(cfg_.ro_count > 0, "RoGridAggressor: zero ROs");
  SLM_REQUIRE(cfg_.toggle_freq_mhz > 0, "RoGridAggressor: bad frequency");
  SLM_REQUIRE(cfg_.ramp_fraction > 0 && cfg_.ramp_fraction <= 1.0,
              "RoGridAggressor: ramp fraction out of (0, 1]");
}

double RoGridAggressor::max_current_a() const {
  return static_cast<double>(cfg_.ro_count) * cfg_.current_per_ro_a;
}

double RoGridAggressor::current_at(double t_ns, double enable_at_ns) const {
  if (t_ns < enable_at_ns) return 0.0;
  const double period_ns = 1000.0 / cfg_.toggle_freq_mhz;
  const double phase = std::fmod(t_ns - enable_at_ns, period_ns) / period_ns;
  const double ramp_end = cfg_.ramp_fraction;
  if (phase < ramp_end) {
    // Gradual enable: linear ramp to the full grid current.
    return max_current_a() * (phase / ramp_end);
  }
  // Sudden disable: everything off for the rest of the period.
  return 0.0;
}

std::vector<double> RoGridAggressor::sequence(std::size_t n, double dt_ns,
                                              double enable_at_ns) const {
  std::vector<double> seq(n);
  for (std::size_t k = 0; k < n; ++k) {
    seq[k] = current_at(static_cast<double>(k) * dt_ns, enable_at_ns);
  }
  return seq;
}

}  // namespace slm::pdn
