#include "pdn/cycle_response.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace slm::pdn {

CycleResponseMatrix CycleResponseMatrix::build(
    const PdnConfig& cfg, const std::vector<double>& sample_times_ns,
    const std::vector<double>& cycle_starts_ns, double cycle_len_ns) {
  SLM_REQUIRE(!sample_times_ns.empty(), "CycleResponseMatrix: no samples");
  SLM_REQUIRE(!cycle_starts_ns.empty(), "CycleResponseMatrix: no cycles");
  SLM_REQUIRE(cycle_len_ns > 0, "CycleResponseMatrix: bad cycle length");
  SLM_REQUIRE(std::is_sorted(sample_times_ns.begin(), sample_times_ns.end()),
              "CycleResponseMatrix: sample times must be sorted");

  CycleResponseMatrix crm;
  crm.sample_times_ = sample_times_ns;
  crm.cycle_starts_ = cycle_starts_ns;
  crm.m_.assign(sample_times_ns.size() * cycle_starts_ns.size(), 0.0);

  RlcPdn probe(cfg);
  crm.v_dc_ = probe.dc_voltage(cfg.idle_current_a);

  const double t_end = sample_times_ns.back() + cfg.dt_ns;

  for (std::size_t c = 0; c < cycle_starts_ns.size(); ++c) {
    RlcPdn pdn(cfg);
    const double t_on = cycle_starts_ns[c];
    const double t_off = t_on + cycle_len_ns;

    std::size_t next_sample = 0;
    // Step across the window; record v - v_dc at each sample instant
    // (nearest-step sampling is fine: dt << sample spacing).
    for (double t = 0.0; t <= t_end && next_sample < sample_times_ns.size();
         t += cfg.dt_ns) {
      const double i = (t >= t_on && t < t_off) ? 1.0 : 0.0;
      const double v = pdn.step(i);
      if (t + cfg.dt_ns > sample_times_ns[next_sample]) {
        crm.m_[next_sample * cycle_starts_ns.size() + c] = v - crm.v_dc_;
        ++next_sample;
      }
    }
  }
  return crm;
}

double CycleResponseMatrix::voltage_at(
    std::size_t sample, const std::vector<double>& i_cycles) const {
  SLM_REQUIRE(sample < sample_times_.size(), "voltage_at: bad sample");
  SLM_REQUIRE(i_cycles.size() == cycle_starts_.size(),
              "voltage_at: cycle current count mismatch");
  const double* row = &m_[sample * cycle_starts_.size()];
  double dv = 0.0;
  for (std::size_t c = 0; c < i_cycles.size(); ++c) dv += row[c] * i_cycles[c];
  return v_dc_ + dv;
}

void CycleResponseMatrix::voltages(const std::vector<double>& i_cycles,
                                   std::vector<double>& out) const {
  SLM_REQUIRE(i_cycles.size() == cycle_starts_.size(),
              "voltages: cycle current count mismatch");
  const std::size_t n_samples = sample_times_.size();
  const std::size_t n_cycles = cycle_starts_.size();
  out.resize(n_samples);
  const double* m = m_.data();
  const double* ic = i_cycles.data();
  for (std::size_t s = 0; s < n_samples; ++s) {
    const double* row = m + s * n_cycles;
    double dv = 0.0;
    for (std::size_t c = 0; c < n_cycles; ++c) dv += row[c] * ic[c];
    out[s] = v_dc_ + dv;
  }
}

void CycleResponseMatrix::voltages_block(const double* ic_t,
                                         std::size_t lanes,
                                         std::size_t stride, double* out,
                                         bool simd) const {
  SLM_REQUIRE(lanes > 0 && lanes <= stride,
              "voltages_block: lanes exceed stride");
  const std::size_t n_samples = sample_times_.size();
  const std::size_t n_cycles = cycle_starts_.size();
  const double* m = m_.data();
  if (!simd) {
    // Scalar fallback: the exact voltages() loop, one lane at a time.
    for (std::size_t l = 0; l < lanes; ++l) {
      for (std::size_t s = 0; s < n_samples; ++s) {
        const double* row = m + s * n_cycles;
        double dv = 0.0;
        for (std::size_t c = 0; c < n_cycles; ++c) {
          dv += row[c] * ic_t[c * stride + l];
        }
        out[l * n_samples + s] = v_dc_ + dv;
      }
    }
    return;
  }
  // Lane-tiled: each tile's accumulators live in registers across the
  // whole cycle loop (no per-cycle load/store of a deviation buffer).
  // Every lane still accumulates c-ascending into its own running sum —
  // the exact voltages() order — so results stay bit-identical; the
  // lanes only pipeline the otherwise latency-bound FP-add chain.
  constexpr std::size_t kTile = 8;
  const std::size_t tiled = lanes - lanes % kTile;
  for (std::size_t l0 = 0; l0 < tiled; l0 += kTile) {
    for (std::size_t s = 0; s < n_samples; ++s) {
      const double* __restrict row = m + s * n_cycles;
      double acc[kTile] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
      for (std::size_t c = 0; c < n_cycles; ++c) {
        const double rc = row[c];
        const double* __restrict ic = ic_t + c * stride + l0;
        for (std::size_t k = 0; k < kTile; ++k) acc[k] += rc * ic[k];
      }
      for (std::size_t k = 0; k < kTile; ++k) {
        out[(l0 + k) * n_samples + s] = v_dc_ + acc[k];
      }
    }
  }
  // Ragged tail: the scalar per-lane loop (same accumulation order).
  for (std::size_t l = tiled; l < lanes; ++l) {
    for (std::size_t s = 0; s < n_samples; ++s) {
      const double* row = m + s * n_cycles;
      double dv = 0.0;
      for (std::size_t c = 0; c < n_cycles; ++c) {
        dv += row[c] * ic_t[c * stride + l];
      }
      out[l * n_samples + s] = v_dc_ + dv;
    }
  }
}

double CycleResponseMatrix::response(std::size_t sample,
                                     std::size_t cycle) const {
  SLM_REQUIRE(sample < sample_times_.size() && cycle < cycle_starts_.size(),
              "response: index out of range");
  return m_[sample * cycle_starts_.size() + cycle];
}

}  // namespace slm::pdn
