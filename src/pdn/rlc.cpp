#include "pdn/rlc.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace slm::pdn {

RlcPdn::RlcPdn(const PdnConfig& cfg) : cfg_(cfg) {
  SLM_REQUIRE(cfg_.r_ohm > 0 && cfg_.l_h > 0 && cfg_.c_f > 0,
              "RlcPdn: R, L, C must be positive");
  SLM_REQUIRE(cfg_.dt_ns > 0, "RlcPdn: dt must be positive");
  // Stability guard: RK4 needs dt well below the resonance period.
  const double t_res_ns =
      units::s_to_ns(2.0 * M_PI * std::sqrt(cfg_.l_h * cfg_.c_f));
  SLM_REQUIRE(cfg_.dt_ns < t_res_ns / 20.0,
              "RlcPdn: dt too coarse for the configured L and C");
  reset();
}

void RlcPdn::reset() {
  v_ = dc_voltage(cfg_.idle_current_a);
  il_ = cfg_.idle_current_a;
}

double RlcPdn::step(double extra_load_a) {
  const double i_load = cfg_.idle_current_a + extra_load_a;
  const double dt = units::ns_to_s(cfg_.dt_ns);

  // State y = (v, il); y' = f(y).
  const auto f = [&](double v, double il, double& dv, double& dil) {
    dv = (il - i_load) / cfg_.c_f;
    dil = (cfg_.vreg - v - cfg_.r_ohm * il) / cfg_.l_h;
  };

  double k1v, k1i, k2v, k2i, k3v, k3i, k4v, k4i;
  f(v_, il_, k1v, k1i);
  f(v_ + 0.5 * dt * k1v, il_ + 0.5 * dt * k1i, k2v, k2i);
  f(v_ + 0.5 * dt * k2v, il_ + 0.5 * dt * k2i, k3v, k3i);
  f(v_ + dt * k3v, il_ + dt * k3i, k4v, k4i);

  v_ += dt / 6.0 * (k1v + 2 * k2v + 2 * k3v + k4v);
  il_ += dt / 6.0 * (k1i + 2 * k2i + 2 * k3i + k4i);
  return v_;
}

std::vector<double> RlcPdn::run(const std::vector<double>& extra_load_a) {
  std::vector<double> out;
  out.reserve(extra_load_a.size());
  for (double i : extra_load_a) out.push_back(step(i));
  return out;
}

double RlcPdn::dc_voltage(double total_load_a) const {
  return cfg_.vreg - cfg_.r_ohm * total_load_a;
}

double RlcPdn::damping_ratio() const {
  return cfg_.r_ohm / 2.0 * std::sqrt(cfg_.c_f / cfg_.l_h);
}

double RlcPdn::resonance_mhz() const {
  const double f_hz = 1.0 / (2.0 * M_PI * std::sqrt(cfg_.l_h * cfg_.c_f));
  return f_hz / 1e6;
}

}  // namespace slm::pdn
