// Lumped second-order model of the shared power distribution network.
//
// A voltage regulator (ideal source Vreg) feeds the die capacitance C
// through the package/board parasitics R and L; all tenants draw their
// load current I(t) from the same C node:
//
//     L dI_L/dt = Vreg - V - R * I_L
//     C dV/dt   = I_L - I_load(t)
//
// With the default parameters the system is underdamped: a current step
// produces the droop-then-overshoot shape the paper's Fig. 6 shows when
// the RO grid switches on and off. The model is linear, which the fast
// campaign engine (CycleResponseMatrix) exploits.
#pragma once

#include <cstddef>
#include <vector>

namespace slm::pdn {

struct PdnConfig {
  double vreg = 1.0;     ///< regulator output (V)
  double r_ohm = 0.050;  ///< series resistance (ohm)
  double l_h = 100e-12;  ///< series inductance (H)
  double c_f = 25e-9;    ///< die + package capacitance (F)
  double dt_ns = 0.05;   ///< integration step (ns)

  /// Standing current of the rest of the design (A); defines the DC
  /// operating point the droops ride on.
  double idle_current_a = 0.5;
};

/// Fourth-order Runge-Kutta integrator over the two-state RLC system.
class RlcPdn {
 public:
  explicit RlcPdn(const PdnConfig& cfg);

  /// Re-initialise to the DC operating point for the idle current.
  void reset();

  /// Advance one dt with the given *additional* load current (on top of
  /// the idle current); returns the new node voltage.
  double step(double extra_load_a);

  /// Batch-run a whole current sequence; returns voltage after each step.
  std::vector<double> run(const std::vector<double>& extra_load_a);

  double voltage() const { return v_; }
  double inductor_current() const { return il_; }
  const PdnConfig& config() const { return cfg_; }

  /// DC voltage for a constant total load (analytic: V = Vreg - R*I).
  double dc_voltage(double total_load_a) const;

  /// Damping ratio zeta of the linear system (diagnostic; < 1 means the
  /// step response overshoots).
  double damping_ratio() const;

  /// Resonance frequency in MHz (diagnostic).
  double resonance_mhz() const;

 private:
  PdnConfig cfg_;
  double v_ = 0.0;   // capacitor voltage
  double il_ = 0.0;  // inductor current
};

}  // namespace slm::pdn
